package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapRange is the determinism lint for the functions normreturn
// covers: inside an exported score producer, iterating a map in Go's
// randomized order must not be able to reach the returned score data.
// A ranking assembled in map order differs between two runs of the
// same binary — exactly the nondeterminism that makes L1/footrule
// comparisons against IdealRank unreproducible.
//
// A map range taints an outer variable when its body
//   - appends to it (element order then depends on iteration order), or
//   - accumulates into it with a compound assignment on a float or
//     string (float addition is not associative; ulp-level differences
//     reorder ties downstream).
//
// The checker is interprocedural through summaries (summary.go): a
// call to a module function whose summary marks a result as carrying
// map-iteration order taints the variable it is assigned to (and a
// tainted value returned directly is reported at the call site), so
// moving the map range into a helper no longer hides it.
//
// The taint is cleared when, before reaching a return of the tainted
// value, the value passes through a sort call (sort.Slice, sort.Sort,
// sort.Float64s, or any function whose name contains "sort") or is
// wholly overwritten. Order-insensitive uses — writing m[k] into
// per-key slots, integer counting — are not flagged. -fix rewrites the
// loop to iterate over sorted keys.
var MapRange = &Analyzer{
	Name:        "maprange",
	Doc:         "map iteration order must not reach an exported score producer's return value unsorted",
	LibraryOnly: true,
	CanFix:      true,
	Run:         runMapRange,
}

// taintOrigin records where a taint came from, for diagnostics: a map
// range in this function (rs non-nil, mechanical fix available) or a
// call to a function summarized as returning map-ordered data.
type taintOrigin struct {
	pos  token.Pos
	desc string
	rs   *ast.RangeStmt
}

// mapTaintFact maps a tainted variable to its origin.
type mapTaintFact map[types.Object]*taintOrigin

func runMapRange(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !fn.Name.IsExported() {
				continue
			}
			if !isScoreProducer(pass.Pkg.Info, fn) {
				continue
			}
			checkMapRangeFunc(pass, fn)
		}
	}
}

func checkMapRangeFunc(pass *Pass, fn *ast.FuncDecl) {
	reported := make(map[token.Pos]bool)
	runMapTaintFlow(pass.Pkg, fn, pass.Summaries,
		func(ret *ast.ReturnStmt, resultIndex int, origin *taintOrigin, obj types.Object) {
			if reported[origin.pos] {
				return
			}
			reported[origin.pos] = true
			through := ""
			if obj != nil {
				through = fmt.Sprintf(" through %q", obj.Name())
			}
			var fix *SuggestedFix
			if origin.rs != nil {
				fix = mapRangeFix(pass, origin.rs)
			}
			pass.ReportfFix(origin.pos, fix,
				"%s reaches the return value of %s%s; iterate over sorted keys or sort it before returning",
				origin.desc, fn.Name.Name, through)
		})
}

// mapOrderTaintedResults runs the taint flow for the summary layer and
// returns, per result slot, whether map-iteration order can reach it
// unsorted. Used by ComputeSummaries for every function with slice or
// map results, so the checker sees taint through arbitrarily deep
// helper chains.
func mapOrderTaintedResults(pkg *Package, fn *ast.FuncDecl, sums *Summaries) []bool {
	nres := 0
	if fn.Type.Results != nil {
		for _, f := range fn.Type.Results.List {
			if n := len(f.Names); n > 0 {
				nres += n
			} else {
				nres++
			}
		}
	}
	tainted := make([]bool, nres)
	runMapTaintFlow(pkg, fn, sums,
		func(ret *ast.ReturnStmt, resultIndex int, origin *taintOrigin, obj types.Object) {
			if resultIndex >= 0 && resultIndex < len(tainted) {
				tainted[resultIndex] = true
			}
		})
	return tainted
}

// runMapTaintFlow is the shared taint engine: it seeds taint from map
// ranges in fn's body and from calls to functions with tainted result
// summaries, kills taint at sorts and overwrites, and invokes onReturn
// for every (return statement, result slot) a tainted value reaches.
func runMapTaintFlow(pkg *Package, fn *ast.FuncDecl, sums *Summaries,
	onReturn func(ret *ast.ReturnStmt, resultIndex int, origin *taintOrigin, obj types.Object)) {
	info := pkg.Info
	g := BuildCFG(fn.Body)

	// Pre-pass: find map ranges and the outer variables their bodies
	// accumulate into in iteration order. Origins are allocated here,
	// once per site — the transfer function must reuse them, because the
	// solver detects the fixpoint by comparing origin pointers and a
	// fresh allocation per visit would never converge on a loopy CFG.
	taintsOf := make(map[*ast.RangeStmt][]types.Object)
	rangeOrigin := make(map[*ast.RangeStmt]*taintOrigin)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if t := info.TypeOf(rs.X); t == nil {
			return true
		} else if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		taintsOf[rs] = orderSensitiveWrites(info, rs)
		rangeOrigin[rs] = &taintOrigin{pos: rs.Pos(), desc: "map iteration order", rs: rs}
		return true
	})

	// Call-site origins, memoized for the same reason.
	callOrigins := make(map[*ast.CallExpr]*taintOrigin)
	callOrigin := func(call *ast.CallExpr) *taintOrigin {
		o := callOrigins[call]
		if o == nil {
			o = &taintOrigin{
				pos:  call.Pos(),
				desc: fmt.Sprintf("map iteration order inside %s (its result is assembled in map order)", callName(call)),
			}
			callOrigins[call] = o
		}
		return o
	}

	// Result-slot bookkeeping: named results map to their slot index so
	// bare returns and named assignments resolve.
	namedResultIndex := make(map[types.Object]int)
	slot := 0
	if fn.Type.Results != nil {
		for _, field := range fn.Type.Results.List {
			if len(field.Names) == 0 {
				slot++
				continue
			}
			for _, name := range field.Names {
				if obj := info.Defs[name]; obj != nil {
					namedResultIndex[obj] = slot
				}
				slot++
			}
		}
	}

	// taintedCallResults maps a call expression to the summary-tainted
	// slots of its callee, resolved once.
	taintedResultsOf := func(call *ast.CallExpr) []bool {
		cs := sums.CalleeSummary(info, call)
		if cs == nil {
			return nil
		}
		any := false
		for _, t := range cs.TaintedResults {
			if t {
				any = true
			}
		}
		if !any {
			return nil
		}
		return cs.TaintedResults
	}

	transfer := func(b *Block, in mapTaintFact) mapTaintFact {
		out := in
		cloned := false
		clone := func() {
			if !cloned {
				c := make(mapTaintFact, len(out)+1)
				for k, v := range out {
					c[k] = v
				}
				out = c
				cloned = true
			}
		}
		for _, node := range b.Nodes {
			switch s := node.(type) {
			case *ast.RangeStmt:
				if objs := taintsOf[s]; len(objs) > 0 {
					clone()
					origin := rangeOrigin[s]
					for _, obj := range objs {
						out[obj] = origin
					}
				}
			case *ast.ReturnStmt:
				// Tainted variables reaching a return slot.
				for obj, origin := range out {
					if s.Results == nil {
						if idx, ok := namedResultIndex[obj]; ok {
							onReturn(s, idx, origin, obj)
						}
						continue
					}
					for i, res := range s.Results {
						if usesObject(info, res, obj, nil) {
							onReturn(s, i, origin, obj)
						}
					}
				}
				// Summary-tainted call results returned directly.
				for i, res := range s.Results {
					call, ok := ast.Unparen(res).(*ast.CallExpr)
					if !ok {
						continue
					}
					tr := taintedResultsOf(call)
					if tr == nil {
						continue
					}
					origin := callOrigin(call)
					if len(s.Results) == 1 && len(tr) > 1 {
						// return helper() forwarding a tuple: slot j of
						// the return is slot j of the callee.
						for j, t := range tr {
							if t {
								onReturn(s, j, origin, nil)
							}
						}
					} else if tr[0] {
						onReturn(s, i, origin, nil) // single-result callee in slot i
					}
				}
			case *ast.AssignStmt:
				// A sort call or a whole overwrite settles the order.
				for _, call := range callsIn(s) {
					killSorted(info, call, &out, clone)
				}
				// Summary-tainted call results taint their targets.
				if len(s.Rhs) == 1 {
					if call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr); ok {
						if tr := taintedResultsOf(call); tr != nil {
							origin := callOrigin(call)
							for i, lhs := range s.Lhs {
								id, ok := lhs.(*ast.Ident)
								if !ok || id.Name == "_" {
									continue
								}
								ti := i
								if len(s.Lhs) == 1 {
									ti = 0
								}
								if ti < len(tr) && tr[ti] {
									obj := info.Defs[id]
									if obj == nil {
										obj = info.Uses[id]
									}
									if obj != nil {
										clone()
										out[obj] = origin
									}
								}
							}
						}
					}
				}
				for i, lhs := range s.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok {
						continue
					}
					obj := info.Uses[id]
					if obj == nil {
						obj = info.Defs[id]
					}
					if _, tainted := out[obj]; !tainted {
						continue
					}
					if i < len(s.Rhs) && usesObject(info, s.Rhs[i], obj, nil) {
						continue // v = append(v, ...): still the same data
					}
					if len(s.Rhs) == 1 && len(s.Lhs) > 1 && usesObject(info, s.Rhs[0], obj, nil) {
						continue
					}
					if i < len(s.Rhs) {
						if call, ok := ast.Unparen(s.Rhs[i]).(*ast.CallExpr); ok {
							if tr := taintedResultsOf(call); tr != nil {
								continue // overwritten by a tainted call; the origin set above stands
							}
						}
					}
					clone()
					delete(out, obj)
				}
			default:
				for _, call := range callsIn(node) {
					killSorted(info, call, &out, clone)
				}
			}
		}
		return out
	}

	Solve(g, FlowProblem[mapTaintFact]{
		Entry:    mapTaintFact{},
		Transfer: transfer,
		Join: func(a, b mapTaintFact) mapTaintFact {
			if len(b) == 0 {
				return a
			}
			if len(a) == 0 {
				return b
			}
			out := make(mapTaintFact, len(a)+len(b))
			for k, v := range a {
				out[k] = v
			}
			for k, v := range b {
				out[k] = v
			}
			return out
		},
		Equal: func(a, b mapTaintFact) bool {
			if len(a) != len(b) {
				return false
			}
			for k, v := range a {
				if w, ok := b[k]; !ok || w != v {
					return false
				}
			}
			return true
		},
	})
}

// killSorted clears the taint of any variable passed to a sort-like
// call (callee name contains "sort", case-insensitive).
func killSorted(info *types.Info, call *ast.CallExpr, out *mapTaintFact, clone func()) {
	var name string
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
		if id, ok := fun.X.(*ast.Ident); ok && id.Name == "sort" {
			name = "sort" + name
		}
	}
	if !strings.Contains(strings.ToLower(name), "sort") {
		return
	}
	for obj := range *out {
		for _, arg := range call.Args {
			if usesObject(info, arg, obj, nil) {
				clone()
				delete(*out, obj)
			}
		}
	}
}

// orderSensitiveWrites returns the variables declared outside rs that
// rs's body accumulates into in iteration order: append targets, and
// float/string compound assignments.
func orderSensitiveWrites(info *types.Info, rs *ast.RangeStmt) []types.Object {
	var out []types.Object
	seen := make(map[types.Object]bool)
	add := func(id *ast.Ident) {
		obj := info.Uses[id]
		if obj == nil {
			obj = info.Defs[id]
		}
		v, ok := obj.(*types.Var)
		if !ok || seen[v] {
			return
		}
		// Declared inside the loop: its order-dependence dies with the
		// iteration unless it escapes, which a later range covers.
		if v.Pos() >= rs.Pos() && v.Pos() <= rs.End() {
			return
		}
		seen[v] = true
		out = append(out, v)
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		s, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch s.Tok {
		case token.ASSIGN, token.DEFINE:
			for i, rhs := range s.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok {
					continue
				}
				if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" {
					continue
				}
				if i < len(s.Lhs) {
					if id, ok := s.Lhs[i].(*ast.Ident); ok && id.Name != "_" {
						add(id)
					}
				}
			}
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			id, ok := s.Lhs[0].(*ast.Ident)
			if !ok {
				return true
			}
			t := info.TypeOf(id)
			if t == nil {
				return true
			}
			if b, ok := t.Underlying().(*types.Basic); ok &&
				b.Info()&(types.IsFloat|types.IsString) != 0 {
				add(id)
			}
		}
		return true
	})
	return out
}

// mapRangeFix builds the mechanical rewrite: materialize the keys,
// sort them, and iterate the sorted slice. Returns nil when the loop
// shape is outside the mechanical cases (non-identifier key, unordered
// key type, ranging over a call).
func mapRangeFix(pass *Pass, rs *ast.RangeStmt) *SuggestedFix {
	info := pass.Pkg.Info
	switch rs.X.(type) {
	case *ast.Ident, *ast.SelectorExpr:
	default:
		return nil
	}
	if rs.Tok != token.DEFINE {
		return nil
	}
	key, ok := rs.Key.(*ast.Ident)
	if !ok || key.Name == "_" {
		return nil
	}
	mt, ok := info.TypeOf(rs.X).Underlying().(*types.Map)
	if !ok {
		return nil
	}
	basic, ok := mt.Key().Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsOrdered == 0 {
		return nil
	}
	qualifier := func(p *types.Package) string {
		if p == pass.Pkg.Types {
			return ""
		}
		return p.Name()
	}
	keyType := types.TypeString(mt.Key(), qualifier)
	mapExpr := types.ExprString(rs.X)
	line := pass.Pkg.Fset.Position(rs.Pos()).Line
	keysVar := fmt.Sprintf("sortedKeys%d", line)

	var header strings.Builder
	fmt.Fprintf(&header, "%s := make([]%s, 0, len(%s))\n", keysVar, keyType, mapExpr)
	fmt.Fprintf(&header, "for k := range %s {\n%s = append(%s, k)\n}\n", mapExpr, keysVar, keysVar)
	fmt.Fprintf(&header, "sort.Slice(%s, func(i, j int) bool { return %s[i] < %s[j] })\n", keysVar, keysVar, keysVar)
	fmt.Fprintf(&header, "for _, %s := range %s {", key.Name, keysVar)

	edits := []TextEdit{
		{Pos: rs.For, End: rs.Body.Lbrace + 1, NewText: header.String()},
	}
	if val, ok := rs.Value.(*ast.Ident); ok && val.Name != "_" {
		edits = append(edits, TextEdit{
			Pos:     rs.Body.Lbrace + 1,
			End:     rs.Body.Lbrace + 1,
			NewText: fmt.Sprintf("\n%s := %s[%s]", val.Name, mapExpr, key.Name),
		})
	}
	return &SuggestedFix{
		Message:    "iterate over sorted map keys",
		Edits:      edits,
		NeedImport: "sort",
	}
}
