package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapRange is the determinism lint for the functions normreturn
// covers: inside an exported score producer, iterating a map in Go's
// randomized order must not be able to reach the returned score data.
// A ranking assembled in map order differs between two runs of the
// same binary — exactly the nondeterminism that makes L1/footrule
// comparisons against IdealRank unreproducible.
//
// A map range taints an outer variable when its body
//   - appends to it (element order then depends on iteration order), or
//   - accumulates into it with a compound assignment on a float or
//     string (float addition is not associative; ulp-level differences
//     reorder ties downstream).
//
// The taint is cleared when, before reaching a return of the tainted
// value, the value passes through a sort call (sort.Slice, sort.Sort,
// sort.Float64s, or any function whose name contains "sort") or is
// wholly overwritten. Order-insensitive uses — writing m[k] into
// per-key slots, integer counting — are not flagged. -fix rewrites the
// loop to iterate over sorted keys.
var MapRange = &Analyzer{
	Name:        "maprange",
	Doc:         "map iteration order must not reach an exported score producer's return value unsorted",
	LibraryOnly: true,
	Run:         runMapRange,
}

// taintFact maps a tainted variable to the map range that tainted it.
type taintFact map[types.Object]*ast.RangeStmt

func runMapRange(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !fn.Name.IsExported() {
				continue
			}
			if !isScoreProducer(pass.Pkg.Info, fn) {
				continue
			}
			checkMapRangeFunc(pass, fn)
		}
	}
}

func checkMapRangeFunc(pass *Pass, fn *ast.FuncDecl) {
	info := pass.Pkg.Info
	g := BuildCFG(fn.Body)

	// Pre-pass: find map ranges and the outer variables their bodies
	// accumulate into in iteration order.
	taintsOf := make(map[*ast.RangeStmt][]types.Object)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if t := info.TypeOf(rs.X); t == nil {
			return true
		} else if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		taintsOf[rs] = orderSensitiveWrites(info, rs)
		return true
	})

	namedResults := make(map[types.Object]bool)
	if fn.Type.Results != nil {
		for _, field := range fn.Type.Results.List {
			for _, name := range field.Names {
				if obj := info.Defs[name]; obj != nil {
					namedResults[obj] = true
				}
			}
		}
	}

	reported := make(map[token.Pos]bool)
	transfer := func(b *Block, in taintFact) taintFact {
		out := in
		cloned := false
		clone := func() {
			if !cloned {
				c := make(taintFact, len(out)+1)
				for k, v := range out {
					c[k] = v
				}
				out = c
				cloned = true
			}
		}
		for _, node := range b.Nodes {
			switch s := node.(type) {
			case *ast.RangeStmt:
				if objs := taintsOf[s]; len(objs) > 0 {
					clone()
					for _, obj := range objs {
						out[obj] = s
					}
				}
			case *ast.ReturnStmt:
				for obj, rs := range out {
					returned := false
					if s.Results == nil {
						returned = namedResults[obj]
					} else {
						for _, res := range s.Results {
							if usesObject(info, res, obj, nil) {
								returned = true
							}
						}
					}
					if returned && !reported[rs.Pos()] {
						reported[rs.Pos()] = true
						pass.ReportfFix(rs.Pos(), mapRangeFix(pass, rs),
							"map iteration order reaches the return value of %s through %q; iterate over sorted keys or sort it before returning",
							fn.Name.Name, obj.Name())
					}
				}
			case *ast.AssignStmt:
				// A sort call or a whole overwrite settles the order.
				for _, call := range callsIn(s) {
					killSorted(info, call, &out, clone)
				}
				for i, lhs := range s.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok {
						continue
					}
					obj := info.Uses[id]
					if obj == nil {
						obj = info.Defs[id]
					}
					if _, tainted := out[obj]; !tainted {
						continue
					}
					if i < len(s.Rhs) && usesObject(info, s.Rhs[i], obj, nil) {
						continue // v = append(v, ...): still the same data
					}
					if len(s.Rhs) == 1 && len(s.Lhs) > 1 && usesObject(info, s.Rhs[0], obj, nil) {
						continue
					}
					clone()
					delete(out, obj)
				}
			default:
				for _, call := range callsIn(node) {
					killSorted(info, call, &out, clone)
				}
			}
		}
		return out
	}

	Solve(g, FlowProblem[taintFact]{
		Entry:    taintFact{},
		Transfer: transfer,
		Join: func(a, b taintFact) taintFact {
			if len(b) == 0 {
				return a
			}
			if len(a) == 0 {
				return b
			}
			out := make(taintFact, len(a)+len(b))
			for k, v := range a {
				out[k] = v
			}
			for k, v := range b {
				out[k] = v
			}
			return out
		},
		Equal: func(a, b taintFact) bool {
			if len(a) != len(b) {
				return false
			}
			for k, v := range a {
				if w, ok := b[k]; !ok || w != v {
					return false
				}
			}
			return true
		},
	})
}

// killSorted clears the taint of any variable passed to a sort-like
// call (callee name contains "sort", case-insensitive).
func killSorted(info *types.Info, call *ast.CallExpr, out *taintFact, clone func()) {
	var name string
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
		if id, ok := fun.X.(*ast.Ident); ok && id.Name == "sort" {
			name = "sort" + name
		}
	}
	if !strings.Contains(strings.ToLower(name), "sort") {
		return
	}
	for obj := range *out {
		for _, arg := range call.Args {
			if usesObject(info, arg, obj, nil) {
				clone()
				delete(*out, obj)
			}
		}
	}
}

// orderSensitiveWrites returns the variables declared outside rs that
// rs's body accumulates into in iteration order: append targets, and
// float/string compound assignments.
func orderSensitiveWrites(info *types.Info, rs *ast.RangeStmt) []types.Object {
	var out []types.Object
	seen := make(map[types.Object]bool)
	add := func(id *ast.Ident) {
		obj := info.Uses[id]
		if obj == nil {
			obj = info.Defs[id]
		}
		v, ok := obj.(*types.Var)
		if !ok || seen[v] {
			return
		}
		// Declared inside the loop: its order-dependence dies with the
		// iteration unless it escapes, which a later range covers.
		if v.Pos() >= rs.Pos() && v.Pos() <= rs.End() {
			return
		}
		seen[v] = true
		out = append(out, v)
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		s, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch s.Tok {
		case token.ASSIGN, token.DEFINE:
			for i, rhs := range s.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok {
					continue
				}
				if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" {
					continue
				}
				if i < len(s.Lhs) {
					if id, ok := s.Lhs[i].(*ast.Ident); ok && id.Name != "_" {
						add(id)
					}
				}
			}
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			id, ok := s.Lhs[0].(*ast.Ident)
			if !ok {
				return true
			}
			t := info.TypeOf(id)
			if t == nil {
				return true
			}
			if b, ok := t.Underlying().(*types.Basic); ok &&
				b.Info()&(types.IsFloat|types.IsString) != 0 {
				add(id)
			}
		}
		return true
	})
	return out
}

// mapRangeFix builds the mechanical rewrite: materialize the keys,
// sort them, and iterate the sorted slice. Returns nil when the loop
// shape is outside the mechanical cases (non-identifier key, unordered
// key type, ranging over a call).
func mapRangeFix(pass *Pass, rs *ast.RangeStmt) *SuggestedFix {
	info := pass.Pkg.Info
	switch rs.X.(type) {
	case *ast.Ident, *ast.SelectorExpr:
	default:
		return nil
	}
	if rs.Tok != token.DEFINE {
		return nil
	}
	key, ok := rs.Key.(*ast.Ident)
	if !ok || key.Name == "_" {
		return nil
	}
	mt, ok := info.TypeOf(rs.X).Underlying().(*types.Map)
	if !ok {
		return nil
	}
	basic, ok := mt.Key().Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsOrdered == 0 {
		return nil
	}
	qualifier := func(p *types.Package) string {
		if p == pass.Pkg.Types {
			return ""
		}
		return p.Name()
	}
	keyType := types.TypeString(mt.Key(), qualifier)
	mapExpr := types.ExprString(rs.X)
	line := pass.Pkg.Fset.Position(rs.Pos()).Line
	keysVar := fmt.Sprintf("sortedKeys%d", line)

	var header strings.Builder
	fmt.Fprintf(&header, "%s := make([]%s, 0, len(%s))\n", keysVar, keyType, mapExpr)
	fmt.Fprintf(&header, "for k := range %s {\n%s = append(%s, k)\n}\n", mapExpr, keysVar, keysVar)
	fmt.Fprintf(&header, "sort.Slice(%s, func(i, j int) bool { return %s[i] < %s[j] })\n", keysVar, keysVar, keysVar)
	fmt.Fprintf(&header, "for _, %s := range %s {", key.Name, keysVar)

	edits := []TextEdit{
		{Pos: rs.For, End: rs.Body.Lbrace + 1, NewText: header.String()},
	}
	if val, ok := rs.Value.(*ast.Ident); ok && val.Name != "_" {
		edits = append(edits, TextEdit{
			Pos:     rs.Body.Lbrace + 1,
			End:     rs.Body.Lbrace + 1,
			NewText: fmt.Sprintf("\n%s := %s[%s]", val.Name, mapExpr, key.Name),
		})
	}
	return &SuggestedFix{
		Message:    "iterate over sorted map keys",
		Edits:      edits,
		NeedImport: "sort",
	}
}
