package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file computes the concurrency facts of one summary: the shared
// accesses (with locksets) the function performs — sequentially, and on
// the goroutines it spawns — plus the lock-acquisition sites and
// ordering edges lockorder cycles over. It runs inside the bottom-up
// SCC fixpoint of ComputeSummaries, so callee facts are already (at
// least partially) available and only ever grow; the caps below bound
// the lattice height so the fixpoint terminates.

const (
	maxSummaryAccesses = 96
	maxSummaryEdges    = 64
	maxSummarySites    = 32
)

// concFacts accumulates one summary's concurrency facts with dedup.
type concFacts struct {
	accKeys  map[string]bool
	acc      []SharedAccess
	edgeKeys map[string]bool
	edges    []LockEdge
	siteKeys map[string]bool
	sites    []LockSite
}

func newConcFacts() *concFacts {
	return &concFacts{
		accKeys:  make(map[string]bool),
		edgeKeys: make(map[string]bool),
		siteKeys: make(map[string]bool),
	}
}

func (c *concFacts) addAccess(a SharedAccess) {
	if len(c.acc) >= maxSummaryAccesses {
		return
	}
	k := a.dedupKey()
	if c.accKeys[k] {
		return
	}
	c.accKeys[k] = true
	c.acc = append(c.acc, a)
}

func (c *concFacts) addEdge(e LockEdge) {
	if len(c.edges) >= maxSummaryEdges || e.FromClass == e.ToClass && e.FromClass == "" {
		return
	}
	k := e.FromClass + "\x00" + e.ToClass
	if c.edgeKeys[k] {
		return
	}
	c.edgeKeys[k] = true
	c.edges = append(c.edges, e)
}

func (c *concFacts) addSite(st LockSite) {
	if len(c.sites) >= maxSummarySites {
		return
	}
	if c.siteKeys[st.Class] {
		return
	}
	c.siteKeys[st.Class] = true
	c.sites = append(c.sites, st)
}

// applyNodeLocks is lockTransferNode plus fact collection: each
// acquisition records a site and an ordering edge from every lock
// already held, and each summarized call imports the callee's edges and
// held→callee-acquired edges. col may be nil (pure transfer).
func applyNodeLocks(sums *Summaries, info *types.Info, r *locResolver, node ast.Node, held lockSet, funcName, pkgPath string, col *concFacts) lockSet {
	if _, isDefer := node.(*ast.DeferStmt); isDefer {
		return held
	}
	out := held
	cloned := false
	clone := func() {
		if !cloned {
			c := make(lockSet, len(out)+1)
			for k, v := range out {
				c[k] = v
			}
			out = c
			cloned = true
		}
	}
	for _, call := range callsIn(node) {
		op, _ := classifyLockCall(info, call)
		switch op {
		case opLock, opRLock:
			sel := call.Fun.(*ast.SelectorExpr)
			res := resolveLock(info, r, sel.X, pkgPath)
			class, name := lockClass(info, r, res, funcName, pkgPath)
			if col != nil {
				col.addSite(LockSite{Class: class, Name: name, Pos: call.Pos()})
				for _, h := range out {
					col.addEdge(LockEdge{FromClass: h.Class, FromName: h.Name, ToClass: class, ToName: name, Pos: call.Pos()})
				}
			}
			clone()
			out[res.loc.key()] = heldLock{Loc: res.loc, Class: class, Name: name, Pos: call.Pos()}
		case opUnlock, opRUnlock:
			sel := call.Fun.(*ast.SelectorExpr)
			res := resolveLock(info, r, sel.X, pkgPath)
			if _, ok := out[res.loc.key()]; ok {
				clone()
				delete(out, res.loc.key())
			}
		default:
			if col == nil {
				continue
			}
			cs := sums.CalleeSummaryDevirt(info, call)
			if cs == nil {
				continue
			}
			for _, e := range cs.LockEdges {
				col.addEdge(e)
			}
			for _, st := range cs.AcquiredLocks {
				for _, h := range out {
					col.addEdge(LockEdge{FromClass: h.Class, FromName: h.Name, ToClass: st.Class, ToName: st.Name, Pos: call.Pos()})
				}
				col.addSite(st)
			}
		}
	}
	return out
}

// summarizeAccesses rebuilds s.Accesses / s.AcquiredLocks / s.LockEdges
// from n's body and the current callee summaries. The exported access
// roots are globals and crossed parameter/receiver paths — the memory a
// caller can also reach; frame-local storage is racecheck's business
// when it analyzes the frame directly.
func summarizeAccesses(sums *Summaries, n *CGNode, s *Summary) {
	info := n.Pkg.Info
	pkgPath := n.Pkg.Path
	funcName := n.Func.Name()
	r := summaryResolver(n)
	col := newConcFacts()

	keep := func(res resolved) bool {
		switch res.loc.Kind {
		case locGlobal:
			return true
		case locParam, locRecv:
			return res.crossed
		}
		return false
	}
	waited := waitedWaitGroups(info, n.Decl.Body)

	sink := func(concurrent bool) accessSink {
		return func(res resolved, write, cc bool, locks []heldLock, pos token.Pos) {
			if !keep(res) {
				return
			}
			col.addAccess(SharedAccess{Loc: res.loc, Write: write, Concurrent: concurrent || cc, Locks: locks, Pos: pos})
		}
	}
	scanFrameFacts(sums, info, r, n.Decl.Body, funcName, pkgPath, col, sink, waited)

	// Non-goroutine function literals run as func values on some
	// thread; their accesses are unattributable (no summary for a func
	// value), but their lock acquisitions still order — the fail
	// closure of core.rankManyInto locks mu on the workers' behalf.
	ast.Inspect(n.Decl.Body, func(m ast.Node) bool {
		lit, ok := m.(*ast.FuncLit)
		if !ok {
			return true
		}
		collectLitLockFacts(sums, info, r, lit, funcName, pkgPath, col)
		return false
	})

	s.Accesses = col.acc
	s.AcquiredLocks = col.sites
	s.LockEdges = col.edges
}

// summaryResolver builds the summary-mode resolver of one node.
func summaryResolver(n *CGNode) *locResolver {
	sig := n.Func.Type().(*types.Signature)
	paramOf := make(map[types.Object]int, sig.Params().Len())
	for i := 0; i < sig.Params().Len(); i++ {
		paramOf[sig.Params().At(i)] = i
	}
	var recvObj types.Object
	if rv := sig.Recv(); rv != nil {
		recvObj = rv
	}
	return &locResolver{info: n.Pkg.Info, summary: true, paramOf: paramOf, recvObj: recvObj}
}

// waitedWaitGroups collects the WaitGroup objects the body calls Wait
// on anywhere — the join points that turn a spawn's accesses back into
// sequential ones.
func waitedWaitGroups(info *types.Info, body ast.Node) map[types.Object]bool {
	waited := make(map[types.Object]bool)
	ast.Inspect(body, func(m ast.Node) bool {
		if call, ok := m.(*ast.CallExpr); ok {
			if obj, _, ok := wgMethodCall(info, call, "Wait"); ok {
				waited[obj] = true
			}
		}
		return true
	})
	return waited
}

// scanFrameFacts walks body's CFG with the lockset flow and feeds every
// node's accesses, lock facts and spawns into col / sink. sink(false)
// receives the frame's own accesses, sink(true) those of spawned
// goroutines.
func scanFrameFacts(sums *Summaries, info *types.Info, r *locResolver, body *ast.BlockStmt, funcName, pkgPath string, col *concFacts, sink func(concurrent bool) accessSink, waited map[types.Object]bool) {
	g := BuildCFG(body)
	flow := solveLockFlow(info, r, g, funcName, pkgPath)
	scanner := &accessScanner{info: info, sums: sums, r: r, funcName: funcName, pkgPath: pkgPath, sink: sink(false)}
	for _, b := range g.Blocks {
		if !flow.Reached[b.Index] {
			continue
		}
		held := flow.In[b.Index]
		for _, node := range b.Nodes {
			if gs, ok := node.(*ast.GoStmt); ok {
				scanner.scanNode(gs, held) // argument evaluation is the parent's
				summarizeSpawn(sums, info, r, gs, funcName, pkgPath, col, sink, waited)
				continue
			}
			scanner.scanNode(node, held)
			held = applyNodeLocks(sums, info, r, node, held, funcName, pkgPath, col)
		}
	}
}

// summarizeSpawn records what one go statement's goroutine does. A
// spawn is joined (non-concurrent) when its body guarantees Done on a
// WaitGroup the frame Waits on — ParallelSweep's partition goroutines
// are sequential again by the time the function returns.
func summarizeSpawn(sums *Summaries, info *types.Info, r *locResolver, gs *ast.GoStmt, funcName, pkgPath string, col *concFacts, sink func(concurrent bool) accessSink, waited map[types.Object]bool) {
	if lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
		concurrent := true
		for wg := range waited {
			if goroutineGuaranteesDone(info, sums, lit, wg) {
				concurrent = false
				break
			}
		}
		collectThreadAccesses(sums, info, r, lit, gs.Call, funcName, pkgPath, col, sink(concurrent))
		return
	}
	// go helper(args...): the callee summary IS the thread's behavior.
	cs := sums.CalleeSummaryDevirt(info, gs.Call)
	if cs == nil {
		return
	}
	concurrent := true
	for ai, arg := range gs.Call.Args {
		if pi := cs.ParamIndex(ai); pi >= 0 && pi < len(cs.DonesParams) && cs.DonesParams[pi] {
			for wg := range waited {
				if usesObjectExpr(info, arg, wg) {
					concurrent = false
				}
			}
		}
	}
	translateSpawnSummary(sums, info, r, cs, gs.Call, funcName, pkgPath, col, sink(concurrent))
}

// translateSpawnSummary rebases a spawned callee's accesses and lock
// facts onto the spawn site, with an empty entry lockset (the spawner's
// locks do not protect the goroutine).
func translateSpawnSummary(sums *Summaries, info *types.Info, r *locResolver, cs *Summary, call *ast.CallExpr, funcName, pkgPath string, col *concFacts, sink accessSink) {
	sc := &accessScanner{info: info, sums: sums, r: r, funcName: funcName, pkgPath: pkgPath, sink: sink}
	var recvExpr ast.Expr
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		recvExpr = sel.X
	}
	for _, acc := range cs.Accesses {
		for _, res := range sc.rebase(cs, acc.Loc, call, recvExpr) {
			locks := sc.translateLocks(cs, acc.Locks, call, recvExpr)
			sink(res, acc.Write, true, locks, call.Pos())
		}
	}
	if col != nil {
		for _, e := range cs.LockEdges {
			col.addEdge(e)
		}
		for _, st := range cs.AcquiredLocks {
			col.addSite(st)
		}
	}
}

// collectThreadAccesses scans a goroutine literal's body as its own
// thread: a fresh lockset flow from the empty set, locals declared
// inside the literal thread-private, and the literal's pointer-like
// value parameters aliased to the spawn-site arguments (a slice passed
// to `go func(part []float64)` still names the caller's backing array,
// while a plain `w int` is a private copy).
func collectThreadAccesses(sums *Summaries, info *types.Info, outer *locResolver, lit *ast.FuncLit, call *ast.CallExpr, funcName, pkgPath string, col *concFacts, sink accessSink) {
	inner := &locResolver{
		info:    info,
		summary: outer.summary,
		paramOf: outer.paramOf,
		recvObj: outer.recvObj,
		privLo:  lit.Pos(),
		privHi:  lit.End(),
		alias:   spawnAliases(info, outer, lit, call),
	}
	innerSink := func(res resolved, write, cc bool, locks []heldLock, pos token.Pos) {
		if inner.privateTo(res) {
			return
		}
		if res.viaAlias && !res.crossed {
			return // the goroutine's own copy of an aliased header
		}
		sink(res, write, cc, locks, pos)
	}
	scanner := &accessScanner{info: info, sums: sums, r: inner, funcName: funcName, pkgPath: pkgPath, sink: innerSink}
	g := BuildCFG(lit.Body)
	flow := solveLockFlow(info, inner, g, funcName, pkgPath)
	for _, b := range g.Blocks {
		if !flow.Reached[b.Index] {
			continue
		}
		held := flow.In[b.Index]
		for _, node := range b.Nodes {
			if gs, ok := node.(*ast.GoStmt); ok {
				scanner.scanNode(gs, held)
				if nested, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
					collectThreadAccesses(sums, info, inner, nested, gs.Call, funcName, pkgPath, col, sink)
				} else if cs := sums.CalleeSummaryDevirt(info, gs.Call); cs != nil {
					translateSpawnSummary(sums, info, inner, cs, gs.Call, funcName, pkgPath, col, innerSink)
				}
				continue
			}
			scanner.scanNode(node, held)
			held = applyNodeLocks(sums, info, inner, node, held, funcName, pkgPath, col)
		}
	}
}

// spawnAliases maps the literal's pointer-like value parameters to the
// locations of the spawn-site arguments they alias.
func spawnAliases(info *types.Info, outer *locResolver, lit *ast.FuncLit, call *ast.CallExpr) map[types.Object]AbsLoc {
	if lit.Type == nil || lit.Type.Params == nil {
		return nil
	}
	var params []types.Object
	for _, f := range lit.Type.Params.List {
		if len(f.Names) == 0 {
			params = append(params, nil)
			continue
		}
		for _, name := range f.Names {
			params = append(params, info.Defs[name])
		}
	}
	var alias map[types.Object]AbsLoc
	for i, p := range params {
		if p == nil || i >= len(call.Args) {
			continue
		}
		if p.Type() == nil || !pointerLikeType(p.Type()) {
			continue
		}
		if res := outer.resolve(call.Args[i]); res.ok {
			if alias == nil {
				alias = make(map[types.Object]AbsLoc)
			}
			alias[p] = res.loc
		}
	}
	return alias
}

// collectLitLockFacts records the lock sites and ordering edges of a
// non-goroutine function literal (a callback, a closure stored in a
// variable) with a fresh lockset flow. Its memory accesses stay
// unattributed — a func value has no summary — but a double-lock or an
// ABBA half hiding in a closure still reaches the lock-order graph.
func collectLitLockFacts(sums *Summaries, info *types.Info, outer *locResolver, lit *ast.FuncLit, funcName, pkgPath string, col *concFacts) {
	inner := &locResolver{info: info, summary: outer.summary, paramOf: outer.paramOf, recvObj: outer.recvObj}
	g := BuildCFG(lit.Body)
	flow := solveLockFlow(info, inner, g, funcName, pkgPath)
	for _, b := range g.Blocks {
		if !flow.Reached[b.Index] {
			continue
		}
		held := flow.In[b.Index]
		for _, node := range b.Nodes {
			held = applyNodeLocks(sums, info, inner, node, held, funcName, pkgPath, col)
		}
	}
}

// unionAccesses / unionSites / unionEdges are the joins used by
// joinSummaries at devirtualized call sites.
func unionAccesses(a, b []SharedAccess) []SharedAccess {
	if len(b) == 0 {
		return a
	}
	seen := make(map[string]bool, len(a))
	for _, x := range a {
		seen[x.dedupKey()] = true
	}
	for _, x := range b {
		if len(a) >= maxSummaryAccesses {
			break
		}
		if k := x.dedupKey(); !seen[k] {
			seen[k] = true
			a = append(a, x)
		}
	}
	return a
}

func unionSites(a, b []LockSite) []LockSite {
	if len(b) == 0 {
		return a
	}
	seen := make(map[string]bool, len(a))
	for _, x := range a {
		seen[x.Class] = true
	}
	for _, x := range b {
		if len(a) >= maxSummarySites {
			break
		}
		if !seen[x.Class] {
			seen[x.Class] = true
			a = append(a, x)
		}
	}
	return a
}

func unionEdges(a, b []LockEdge) []LockEdge {
	if len(b) == 0 {
		return a
	}
	seen := make(map[string]bool, len(a))
	for _, x := range a {
		seen[x.FromClass+"\x00"+x.ToClass] = true
	}
	for _, x := range b {
		if len(a) >= maxSummaryEdges {
			break
		}
		if k := x.FromClass + "\x00" + x.ToClass; !seen[k] {
			seen[k] = true
			a = append(a, x)
		}
	}
	return a
}
