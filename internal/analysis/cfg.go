package analysis

import (
	"go/ast"
	"go/token"
)

// This file builds intra-procedural control-flow graphs over go/ast
// function bodies. The CFG is the substrate of the flow-sensitive
// checkers (errflow, lockbalance, maprange): each function body becomes
// a graph of basic blocks whose statements execute in order, with edges
// for branches, loops, switches, selects, labeled break/continue, and
// the short-circuit evaluation of && and || in branch conditions.
//
// Deliberate simplifications, documented because checkers rely on them:
//
//   - panic/runtime aborts are not modeled: a call that panics still
//     falls through to the next statement. The checkers care about
//     normal-path invariants (errors checked, locks released), and
//     modeling every potential panic edge would drown them in noise.
//   - goto targets a label conservatively when the label is known and
//     otherwise falls through; this repository's style has no gotos.
//   - defer is not an edge: deferred statements are recorded in
//     CFG.Defers (in syntactic order) and checkers apply them at exit.

// Block is one basic block: statements (and decomposed condition
// expressions) that execute in sequence, followed by a transfer of
// control to one of Succs.
type Block struct {
	// Index is the block's position in CFG.Blocks (entry is 0).
	Index int
	// Nodes holds the statements and condition expressions of the block
	// in execution order. Condition expressions appear as ast.Expr; all
	// other entries are ast.Stmt.
	Nodes []ast.Node
	// Succs are the possible successors in execution order
	// (then-branch before else-branch, loop body before loop exit).
	Succs []*Block
	// Preds are the blocks with an edge into this one.
	Preds []*Block
}

// addSucc links b -> s (nil-safe; duplicates are kept out).
func (b *Block) addSucc(s *Block) {
	if b == nil || s == nil {
		return
	}
	for _, t := range b.Succs {
		if t == s {
			return
		}
	}
	b.Succs = append(b.Succs, s)
	s.Preds = append(s.Preds, b)
}

// CFG is the control-flow graph of one function body.
type CFG struct {
	// Blocks lists every block; Blocks[0] is the entry.
	Blocks []*Block
	// Entry receives control when the function is called.
	Entry *Block
	// Exit is the unique synthetic exit block: every return statement
	// and the fall-off-the-end path lead here. It has no statements.
	Exit *Block
	// Defers lists every defer statement in the body in syntactic
	// order. Whether a given defer actually ran on a given path is not
	// tracked; checkers treat any recorded defer as running at Exit.
	Defers []*ast.DeferStmt
}

// cfgBuilder carries the state of one CFG construction.
type cfgBuilder struct {
	cfg *CFG
	// breakTargets / continueTargets are stacks of the innermost
	// enclosing targets; label maps hold the targets of labeled loops
	// and switches.
	breakTargets    []*Block
	continueTargets []*Block
	labeledBreak    map[string]*Block
	labeledContinue map[string]*Block
	labeledEntry    map[string]*Block
	// pendingLabel carries a label from its LabeledStmt to the loop or
	// switch statement it names, so labeled break/continue resolve.
	pendingLabel string
	gotos        []gotoEdge
}

type gotoEdge struct {
	from  *Block
	label string
}

// BuildCFG constructs the control-flow graph of a function body. It
// never returns nil; an empty body yields entry -> exit.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{
		cfg:             &CFG{},
		labeledBreak:    make(map[string]*Block),
		labeledContinue: make(map[string]*Block),
		labeledEntry:    make(map[string]*Block),
	}
	entry := b.newBlock()
	exit := b.newBlock()
	b.cfg.Entry = entry
	b.cfg.Exit = exit
	last := b.stmtList(body.List, entry)
	last.addSucc(exit)
	// Resolve gotos now that every label has been seen.
	for _, g := range b.gotos {
		if target, ok := b.labeledEntry[g.label]; ok {
			g.from.addSucc(target)
		} else {
			g.from.addSucc(exit)
		}
	}
	return b.cfg
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

// stmtList threads stmts through cur and returns the block holding
// control after the last statement.
func (b *cfgBuilder) stmtList(stmts []ast.Stmt, cur *Block) *Block {
	for _, s := range stmts {
		cur = b.stmt(s, cur)
	}
	return cur
}

// stmt adds one statement to cur and returns the block that control
// flows to afterwards. A return value with no Preds and no path from
// entry marks dead code after a terminating statement; successors keep
// accumulating there harmlessly.
func (b *cfgBuilder) stmt(s ast.Stmt, cur *Block) *Block {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return b.stmtList(s.List, cur)

	case *ast.IfStmt:
		if s.Init != nil {
			cur.Nodes = append(cur.Nodes, s.Init)
		}
		thenEntry := b.newBlock()
		elseEntry := b.newBlock()
		b.cond(s.Cond, cur, thenEntry, elseEntry)
		after := b.newBlock()
		thenExit := b.stmt(s.Body, thenEntry)
		thenExit.addSucc(after)
		if s.Else != nil {
			elseExit := b.stmt(s.Else, elseEntry)
			elseExit.addSucc(after)
		} else {
			elseEntry.addSucc(after)
		}
		return after

	case *ast.ForStmt:
		if s.Init != nil {
			cur.Nodes = append(cur.Nodes, s.Init)
		}
		head := b.newBlock()
		cur.addSucc(head)
		bodyEntry := b.newBlock()
		after := b.newBlock()
		if s.Cond != nil {
			b.cond(s.Cond, head, bodyEntry, after)
		} else {
			head.addSucc(bodyEntry) // for {}: exit only via break
		}
		post := b.newBlock()
		if s.Post != nil {
			post.Nodes = append(post.Nodes, s.Post)
		}
		post.addSucc(head)
		b.pushLoop(s, after, post)
		bodyExit := b.stmt(s.Body, bodyEntry)
		b.popLoop()
		bodyExit.addSucc(post)
		return after

	case *ast.RangeStmt:
		head := b.newBlock()
		// The range statement itself (key/value binding and the ranged
		// expression) lives in the head, executed once per iteration.
		head.Nodes = append(head.Nodes, s)
		cur.addSucc(head)
		bodyEntry := b.newBlock()
		after := b.newBlock()
		head.addSucc(bodyEntry)
		head.addSucc(after)
		b.pushLoop(s, after, head)
		bodyExit := b.stmt(s.Body, bodyEntry)
		b.popLoop()
		bodyExit.addSucc(head)
		return after

	case *ast.SwitchStmt:
		if s.Init != nil {
			cur.Nodes = append(cur.Nodes, s.Init)
		}
		if s.Tag != nil {
			cur.Nodes = append(cur.Nodes, s.Tag)
		}
		return b.switchBody(s, s.Body, cur)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			cur.Nodes = append(cur.Nodes, s.Init)
		}
		cur.Nodes = append(cur.Nodes, s.Assign)
		return b.switchBody(s, s.Body, cur)

	case *ast.SelectStmt:
		after := b.newBlock()
		b.breakTargets = append(b.breakTargets, after)
		b.continueTargets = append(b.continueTargets, nil)
		for _, clause := range s.Body.List {
			cc := clause.(*ast.CommClause)
			entry := b.newBlock()
			if cc.Comm != nil {
				entry.Nodes = append(entry.Nodes, cc.Comm)
			}
			cur.addSucc(entry)
			exit := b.stmtList(cc.Body, entry)
			exit.addSucc(after)
		}
		if len(s.Body.List) == 0 {
			cur.addSucc(after)
		}
		b.breakTargets = b.breakTargets[:len(b.breakTargets)-1]
		b.continueTargets = b.continueTargets[:len(b.continueTargets)-1]
		return after

	case *ast.ReturnStmt:
		cur.Nodes = append(cur.Nodes, s)
		cur.addSucc(b.cfg.Exit)
		return b.newBlock() // unreachable continuation

	case *ast.BranchStmt:
		cur.Nodes = append(cur.Nodes, s)
		switch s.Tok {
		case token.BREAK:
			target := b.innermost(b.breakTargets)
			if s.Label != nil {
				target = b.labeledBreak[s.Label.Name]
			}
			if target == nil {
				target = b.cfg.Exit
			}
			cur.addSucc(target)
		case token.CONTINUE:
			target := b.innermost(b.continueTargets)
			if s.Label != nil {
				target = b.labeledContinue[s.Label.Name]
			}
			if target == nil {
				target = b.cfg.Exit
			}
			cur.addSucc(target)
		case token.GOTO:
			if s.Label != nil {
				b.gotos = append(b.gotos, gotoEdge{cur, s.Label.Name})
			}
		case token.FALLTHROUGH:
			// Handled structurally by switchBody (clause i falls into
			// clause i+1); nothing to add here.
			return cur
		}
		return b.newBlock() // unreachable continuation

	case *ast.LabeledStmt:
		head := b.newBlock()
		cur.addSucc(head)
		b.labeledEntry[s.Label.Name] = head
		// Register loop/switch targets under the label before walking
		// the labeled statement so `break L` / `continue L` resolve.
		b.pendingLabel = s.Label.Name
		out := b.stmt(s.Stmt, head)
		b.pendingLabel = ""
		return out

	case *ast.DeferStmt:
		b.cfg.Defers = append(b.cfg.Defers, s)
		cur.Nodes = append(cur.Nodes, s)
		return cur

	default:
		// Plain statements: declarations, assignments, expressions,
		// go statements, sends, inc/dec, empty statements.
		cur.Nodes = append(cur.Nodes, s)
		return cur
	}
}

// switchBody wires the clause structure shared by switch and type
// switch: every clause entry is reachable from cur (tag dispatch), a
// missing default adds a direct edge to after, and fallthrough links
// clause i's exit to clause i+1's entry.
func (b *cfgBuilder) switchBody(sw ast.Stmt, body *ast.BlockStmt, cur *Block) *Block {
	after := b.newBlock()
	if b.pendingLabel != "" {
		b.labeledBreak[b.pendingLabel] = after
		b.pendingLabel = ""
	}
	b.breakTargets = append(b.breakTargets, after)
	b.continueTargets = append(b.continueTargets, nil)
	hasDefault := false
	entries := make([]*Block, len(body.List))
	exits := make([]*Block, len(body.List))
	for i, clause := range body.List {
		cc := clause.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		entries[i] = b.newBlock()
		for _, e := range cc.List {
			entries[i].Nodes = append(entries[i].Nodes, e)
		}
		cur.addSucc(entries[i])
		exits[i] = b.stmtList(cc.Body, entries[i])
		exits[i].addSucc(after)
	}
	for i, clause := range body.List {
		cc := clause.(*ast.CaseClause)
		if n := len(cc.Body); n > 0 && i+1 < len(entries) {
			if br, ok := cc.Body[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				exits[i].addSucc(entries[i+1])
			}
		}
	}
	if !hasDefault {
		cur.addSucc(after)
	}
	b.breakTargets = b.breakTargets[:len(b.breakTargets)-1]
	b.continueTargets = b.continueTargets[:len(b.continueTargets)-1]
	return after
}

// cond decomposes a branch condition into blocks so short-circuit
// operators get their own edges: in `a && b`, b evaluates only when a
// is true; in `a || b`, only when a is false.
func (b *cfgBuilder) cond(e ast.Expr, cur, yes, no *Block) {
	switch e := e.(type) {
	case *ast.ParenExpr:
		b.cond(e.X, cur, yes, no)
	case *ast.UnaryExpr:
		if e.Op == token.NOT {
			b.cond(e.X, cur, no, yes)
			return
		}
		cur.Nodes = append(cur.Nodes, e)
		cur.addSucc(yes)
		cur.addSucc(no)
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LAND:
			mid := b.newBlock()
			b.cond(e.X, cur, mid, no)
			b.cond(e.Y, mid, yes, no)
		case token.LOR:
			mid := b.newBlock()
			b.cond(e.X, cur, yes, mid)
			b.cond(e.Y, mid, yes, no)
		default:
			cur.Nodes = append(cur.Nodes, e)
			cur.addSucc(yes)
			cur.addSucc(no)
		}
	default:
		cur.Nodes = append(cur.Nodes, e)
		cur.addSucc(yes)
		cur.addSucc(no)
	}
}

// pushLoop registers break/continue targets for a loop statement, also
// under a pending label when the loop was labeled.
func (b *cfgBuilder) pushLoop(loop ast.Stmt, brk, cont *Block) {
	b.breakTargets = append(b.breakTargets, brk)
	b.continueTargets = append(b.continueTargets, cont)
	if b.pendingLabel != "" {
		b.labeledBreak[b.pendingLabel] = brk
		b.labeledContinue[b.pendingLabel] = cont
		b.pendingLabel = ""
	}
}

func (b *cfgBuilder) popLoop() {
	b.breakTargets = b.breakTargets[:len(b.breakTargets)-1]
	b.continueTargets = b.continueTargets[:len(b.continueTargets)-1]
}

// innermost returns the innermost non-nil target (select pushes nil
// continue targets so `continue` skips past it to the enclosing loop).
func (b *cfgBuilder) innermost(stack []*Block) *Block {
	for i := len(stack) - 1; i >= 0; i-- {
		if stack[i] != nil {
			return stack[i]
		}
	}
	return nil
}
