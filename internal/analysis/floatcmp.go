package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// FloatCmp flags == and != between floating-point operands. Exact
// equality on floats silently breaks once a value has passed through
// arithmetic (tie detection in sort comparators is the classic trap in
// this repository: two scores that differ by one ulp are not a tie).
//
// Comparisons against an exact constant zero are permitted: option
// structs here use 0 as the "unset, take the default" sentinel and
// sparse iterations skip exactly-zero entries, both of which are
// well-defined on values that were assigned, never computed. Everything
// else needs either a rewrite (ordered comparisons with an index
// tie-break, or a tolerance from internal/numeric) or an
// //arlint:allow floatcmp sentinel stating why exactness is intended.
var FloatCmp = &Analyzer{
	Name: "floatcmp",
	Doc:  "flag ==/!= on floating-point operands (exact-zero checks exempt)",
	Run:  runFloatCmp,
}

func runFloatCmp(pass *Pass) {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			cmp, ok := n.(*ast.BinaryExpr)
			if !ok || (cmp.Op != token.EQL && cmp.Op != token.NEQ) {
				return true
			}
			if !isFloat(info, cmp.X) && !isFloat(info, cmp.Y) {
				return true
			}
			// Two constant operands fold at compile time; exact zero is
			// the sanctioned unset/sparse sentinel.
			if isConstZero(info, cmp.X) || isConstZero(info, cmp.Y) {
				return true
			}
			pass.Reportf(cmp.OpPos,
				"floating-point %s comparison; use ordered comparisons with a tie-break or a tolerance from internal/numeric",
				cmp.Op)
			return true
		})
	}
}

// isFloat reports whether e has floating-point (or float-complex) type.
func isFloat(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}

// isConstZero reports whether e is a compile-time constant equal to 0.
func isConstZero(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(tv.Value) == 0
	}
	return false
}
