package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file computes per-function summaries bottom-up over the SCCs of
// the call graph (callgraph.go). A summary is the fixed set of facts the
// interprocedural checkers consult at a call site instead of treating
// the call as opaque:
//
//	DropsError      the function observes a callee's error and discards
//	                it without propagation — its callers lose the error
//	Allocates       make / growing append runs per call, directly or in
//	                a callee — a hot loop calling it allocates per
//	                iteration
//	TaintedResults  result i is assembled in map-iteration order and
//	                not sorted before return — callers inherit the
//	                nondeterminism
//	SpawnsGoroutine the function (or a callee) starts a goroutine
//	SendsParams /   channel-typed parameter i is sent to, closed, or
//	ClosesParams /  received from (drained) — how chanleak sees through
//	DrainsParams    worker helpers
//	DonesParams     *sync.WaitGroup parameter i gets Done() on every
//	                path to return — how wgbalance sees through spawned
//	                helpers
//	CtxParam /      position of a context.Context parameter and whether
//	ForwardsCtx     the function forwards it to every context-aware
//	                callee — consumed by ctxflow
//	AcquiresLock /  net lock effect: may exit holding a lock it
//	ReleasesLock    acquired, or releases a lock it did not acquire
//
// The lattice is a product of booleans ordered false < true ("no known
// effect" < "has the effect") for may-facts, and true > false for the
// must-fact DonesParams (a guarantee is claimed only when proven).
// Within one SCC the solver iterates to a fixpoint: may-facts start at
// bottom (false) and only ascend, the Done guarantee starts unproven
// and is promoted only when the current iteration proves it from the
// (monotonically growing) facts of the SCC — so a recursive pair of
// functions converges in at most a few passes and can never oscillate.

// Summary is the interprocedural fact sheet of one declared function.
type Summary struct {
	// DropsError: the function checks an error produced by a call and
	// then discards it — the error variable's only uses are nil
	// comparisons — while having no error result of its own. DropPos is
	// the discarded assignment, DropSource names the producing call.
	DropsError bool
	DropPos    token.Pos
	DropSource string

	// Allocates: the function body (or a static callee) executes make
	// or a growing append on every call. AllocVia names the direct
	// callee responsible when the allocation is inherited.
	Allocates bool
	AllocVia  string

	// TaintedResults[i]: result i carries data accumulated in
	// map-iteration order with no sort before return.
	TaintedResults []bool

	// SpawnsGoroutine: a go statement runs in the function or a callee.
	SpawnsGoroutine bool

	// Per-parameter channel and WaitGroup effects, indexed by the
	// function's parameter positions (variadic included, receiver not).
	SendsParams  []bool
	ClosesParams []bool
	DrainsParams []bool
	DonesParams  []bool

	// CtxParam is the index of the first context.Context parameter, -1
	// when the function does not accept one. ForwardsCtx reports that
	// every context-accepting call in the body receives the function's
	// own context (or one derived from it).
	CtxParam    int
	ForwardsCtx bool

	// AcquiresLock: some path exits holding a lock acquired in the
	// body. ReleasesLock: the body unlocks a mutex it did not lock
	// (a handoff release on behalf of the caller).
	AcquiresLock bool
	ReleasesLock bool

	// Variadic records whether the summarized function's last parameter
	// is variadic — consulted by ParamIndex when mapping call arguments
	// to the per-parameter effect slots above.
	Variadic bool

	// Purity is the function's point on the purity lattice (purity.go):
	// Pure ⊏ Output (writes confined to parameter-reachable memory) ⊏
	// Impure. PurityCause names the first fact that forced the current
	// level, for diagnostics and the dot labels.
	Purity      Purity
	PurityCause string
	// WritesParams[i]: the function may write memory reachable from
	// parameter i (directly or via a callee). WritesRecv is the same
	// for a method's receiver. WritesEscaped records an Output-level
	// write the analysis could not attribute to any parameter — callers
	// must assume any pointer-like argument may be written.
	WritesParams  []bool
	WritesRecv    bool
	WritesEscaped bool

	// Accesses are the shared-location reads and writes the function
	// (and its callees) may perform — rooted at package-level vars and
	// at pointer-crossing parameter/receiver paths — each tagged with
	// the lockset held and whether it runs on an unjoined goroutine
	// (lockset.go / lockfacts.go). Consumed by racecheck.
	Accesses []SharedAccess
	// AcquiredLocks lists the lock classes the function (or a callee,
	// or a closure in it) may acquire; LockEdges are the held→acquired
	// ordering edges observed. Consumed by lockorder's module-wide
	// acquisition-order graph.
	AcquiredLocks []LockSite
	LockEdges     []LockEdge

	// WaitsOnWG: the function (or a callee) blocks on a
	// sync.WaitGroup's Wait — the join half of the spawn/join churn
	// the spawnloop checker looks for inside high-trip loops.
	WaitsOnWG bool
	// SpawnChurn: one call performs an unamortized spawn+join unit —
	// it starts goroutines and joins them with no rounds loop, job
	// feed, or non-churny delegate in between (computeSpawnChurn,
	// spawnloop.go). Calling such a function per iteration of a
	// high-trip loop repeats the churn at the call site.
	SpawnChurn bool

	// Cost is the function's point in the static cost lattice
	// (cost.go): loop-nesting depth with trip classes plus weighted
	// allocation, dynamic-dispatch and goroutine-spawn sites, callees
	// inlined at their call-site depth.
	Cost Cost
}

// ParamIndex maps a call-argument position to the parameter slot it
// binds: for a variadic callee every argument at or past the variadic
// slot folds onto the variadic parameter (`f(a, x, y)` and
// `f(a, xs...)` both reach slot 1 of `f(a T, xs ...U)`). Returns -1
// when the position binds no parameter (or s is nil — no summary, no
// slots).
func (s *Summary) ParamIndex(ai int) int {
	if s == nil {
		return -1
	}
	np := len(s.SendsParams)
	if s.Variadic && np > 0 && ai >= np-1 {
		return np - 1
	}
	if ai < np {
		return ai
	}
	return -1
}

// Summaries holds the computed summary of every call-graph node.
type Summaries struct {
	Graph *CallGraph

	byFunc map[*types.Func]*Summary

	// lockorder's module-wide findings, computed once per Run
	// (lockorder.go) and reported by the pass owning each file.
	lockChecked  bool
	lockFindings []lockOrderFinding
}

// Of returns fn's summary, or nil when fn is not an analyzed declared
// function.
func (s *Summaries) Of(fn *types.Func) *Summary {
	if s == nil || fn == nil {
		return nil
	}
	return s.byFunc[fn.Origin()]
}

// CalleeSummary resolves a call expression to the summary of its static
// callee, or nil for dynamic and out-of-module calls.
func (s *Summaries) CalleeSummary(info *types.Info, call *ast.CallExpr) *Summary {
	if s == nil {
		return nil
	}
	return s.Of(StaticCallee(info, call))
}

// CalleeSummaryDevirt is CalleeSummary extended through the candidate
// edges: at an interface-method call site it returns the pessimistic
// join of the summaries of every known implementation in the analyzed
// package set, so checkers see through the DirectedGraph/InEdgeGraph
// seam instead of going to ⊤. The join keeps may-facts (drops-error,
// allocates, sends, purity level …) if ANY implementation has them and
// must-facts (Done-on-all-paths, context forwarding) only if EVERY
// implementation proves them — sound for both polarities no matter
// which implementation runs. Nil when the callee is neither static nor
// an interface method with at least one candidate.
func (s *Summaries) CalleeSummaryDevirt(info *types.Info, call *ast.CallExpr) *Summary {
	if s == nil {
		return nil
	}
	if cs := s.Of(StaticCallee(info, call)); cs != nil {
		return cs
	}
	if s.Graph == nil {
		return nil
	}
	cands := s.Graph.CandidatesOf(info, call)
	if len(cands) == 0 {
		return nil
	}
	out := joinSummaries(s, cands)
	return out
}

// joinSummaries folds the candidates' summaries into one joined view:
// may-facts by OR, must-facts by AND, purity by lattice max. All
// candidates implement the same interface method, so the per-parameter
// slices line up; joins still guard on length for safety.
func joinSummaries(s *Summaries, cands []*CGNode) *Summary {
	var out *Summary
	for _, c := range cands {
		cs := s.byFunc[c.Func]
		if cs == nil {
			continue
		}
		if out == nil {
			cp := *cs
			cp.TaintedResults = append([]bool(nil), cs.TaintedResults...)
			cp.SendsParams = append([]bool(nil), cs.SendsParams...)
			cp.ClosesParams = append([]bool(nil), cs.ClosesParams...)
			cp.DrainsParams = append([]bool(nil), cs.DrainsParams...)
			cp.DonesParams = append([]bool(nil), cs.DonesParams...)
			cp.WritesParams = append([]bool(nil), cs.WritesParams...)
			cp.Accesses = append([]SharedAccess(nil), cs.Accesses...)
			cp.AcquiredLocks = append([]LockSite(nil), cs.AcquiredLocks...)
			cp.LockEdges = append([]LockEdge(nil), cs.LockEdges...)
			out = &cp
			continue
		}
		if cs.DropsError && !out.DropsError {
			out.DropsError = true
			out.DropPos = cs.DropPos
			out.DropSource = cs.DropSource
		}
		if cs.Allocates && !out.Allocates {
			out.Allocates = true
			out.AllocVia = cs.AllocVia
		}
		orBools(out.TaintedResults, cs.TaintedResults)
		orBools(out.SendsParams, cs.SendsParams)
		orBools(out.ClosesParams, cs.ClosesParams)
		orBools(out.DrainsParams, cs.DrainsParams)
		orBools(out.WritesParams, cs.WritesParams)
		andBools(out.DonesParams, cs.DonesParams)
		out.SpawnsGoroutine = out.SpawnsGoroutine || cs.SpawnsGoroutine
		out.WaitsOnWG = out.WaitsOnWG || cs.WaitsOnWG
		out.SpawnChurn = out.SpawnChurn || cs.SpawnChurn
		out.Cost = out.Cost.join(cs.Cost)
		out.AcquiresLock = out.AcquiresLock || cs.AcquiresLock
		out.ReleasesLock = out.ReleasesLock || cs.ReleasesLock
		out.WritesRecv = out.WritesRecv || cs.WritesRecv
		out.WritesEscaped = out.WritesEscaped || cs.WritesEscaped
		out.ForwardsCtx = out.ForwardsCtx && cs.ForwardsCtx
		if cs.Purity > out.Purity {
			out.Purity = cs.Purity
			out.PurityCause = cs.PurityCause
		}
		out.Accesses = unionAccesses(out.Accesses, cs.Accesses)
		out.AcquiredLocks = unionSites(out.AcquiredLocks, cs.AcquiredLocks)
		out.LockEdges = unionEdges(out.LockEdges, cs.LockEdges)
	}
	return out
}

func orBools(dst, src []bool) {
	for i := range dst {
		if i < len(src) && src[i] {
			dst[i] = true
		}
	}
}

func andBools(dst, src []bool) {
	for i := range dst {
		if i >= len(src) || !src[i] {
			dst[i] = false
		}
	}
}

// ComputeSummaries walks the call graph's SCCs bottom-up and computes
// every node's summary, iterating within each SCC to a fixpoint.
func ComputeSummaries(cg *CallGraph) *Summaries {
	sums := &Summaries{Graph: cg, byFunc: make(map[*types.Func]*Summary, len(cg.Nodes))}
	for _, n := range cg.Nodes {
		sig := n.Func.Type().(*types.Signature)
		np := sig.Params().Len()
		nr := sig.Results().Len()
		s := &Summary{
			TaintedResults: make([]bool, nr),
			SendsParams:    make([]bool, np),
			ClosesParams:   make([]bool, np),
			DrainsParams:   make([]bool, np),
			DonesParams:    make([]bool, np),
			WritesParams:   make([]bool, np),
			CtxParam:       -1,
			Variadic:       sig.Variadic(),
		}
		for i := 0; i < np; i++ {
			if isContextType(sig.Params().At(i).Type()) {
				s.CtxParam = i
				break
			}
		}
		sums.byFunc[n.Func] = s
	}
	for _, scc := range cg.SCCs {
		for changed := true; changed; {
			changed = false
			for _, n := range scc {
				if summarizeNode(sums, n) {
					changed = true
				}
			}
		}
	}
	// SpawnChurn has negative dependencies on the facts above, so it
	// runs as a single bottom-up post-pass over the converged lattice.
	computeSpawnChurn(sums)
	return sums
}

// summarizeNode recomputes n's summary from its body and the current
// summaries of its callees, and reports whether anything ascended.
func summarizeNode(sums *Summaries, n *CGNode) bool {
	s := sums.byFunc[n.Func]
	old := *s
	oldTaint := append([]bool(nil), s.TaintedResults...)
	oldDones := append([]bool(nil), s.DonesParams...)
	oldSends := append([]bool(nil), s.SendsParams...)
	oldCloses := append([]bool(nil), s.ClosesParams...)
	oldDrains := append([]bool(nil), s.DrainsParams...)
	oldWrites := append([]bool(nil), s.WritesParams...)

	info := n.Pkg.Info
	body := n.Decl.Body

	summarizeErrorDrop(n, s)
	summarizeAlloc(sums, n, s)
	summarizeTaint(sums, n, s)
	summarizeConcurrency(sums, n, s)
	summarizeLocks(n, s)
	summarizePurity(sums, n, s)
	summarizeAccesses(sums, n, s)
	summarizeCost(sums, n, s)

	// Context forwarding: every context-accepting call receives the
	// function's own (or a derived) context.
	if s.CtxParam >= 0 {
		s.ForwardsCtx = true
		ctxObjs := contextDerived(info, body, paramObj(n, s.CtxParam))
		ast.Inspect(body, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			if idx := contextArgIndex(info, call); idx >= 0 && idx < len(call.Args) {
				if !usesAnyObject(info, call.Args[idx], ctxObjs) {
					s.ForwardsCtx = false
				}
			}
			return true
		})
	}

	if old.DropsError != s.DropsError || old.Allocates != s.Allocates ||
		old.SpawnsGoroutine != s.SpawnsGoroutine || old.ForwardsCtx != s.ForwardsCtx ||
		old.AcquiresLock != s.AcquiresLock || old.ReleasesLock != s.ReleasesLock ||
		old.Purity != s.Purity || old.WritesRecv != s.WritesRecv ||
		old.WritesEscaped != s.WritesEscaped ||
		old.WaitsOnWG != s.WaitsOnWG || old.Cost != s.Cost {
		return true
	}
	// The concurrency-fact slices are rebuilt from scratch each pass and
	// dedup-capped, so length comparison is an exact ascension test.
	if len(old.Accesses) != len(s.Accesses) || len(old.AcquiredLocks) != len(s.AcquiredLocks) ||
		len(old.LockEdges) != len(s.LockEdges) {
		return true
	}
	return !boolsEqual(oldTaint, s.TaintedResults) || !boolsEqual(oldDones, s.DonesParams) ||
		!boolsEqual(oldSends, s.SendsParams) || !boolsEqual(oldCloses, s.ClosesParams) ||
		!boolsEqual(oldDrains, s.DrainsParams) || !boolsEqual(oldWrites, s.WritesParams)
}

func boolsEqual(a, b []bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// paramObj returns the types object of parameter i of n.
func paramObj(n *CGNode, i int) types.Object {
	sig := n.Func.Type().(*types.Signature)
	if i < 0 || i >= sig.Params().Len() {
		return nil
	}
	return sig.Params().At(i)
}

// paramIndexOf returns the parameter position of obj in n's signature,
// or -1.
func paramIndexOf(n *CGNode, obj types.Object) int {
	sig := n.Func.Type().(*types.Signature)
	for i := 0; i < sig.Params().Len(); i++ {
		if sig.Params().At(i) == obj {
			return i
		}
	}
	return -1
}

// summarizeErrorDrop detects the check-and-discard pattern: an error
// variable assigned from a call whose every use is a nil comparison, in
// a function that has no error result to propagate through. The
// intraprocedural errflow checker accepts any read as "checked"; the
// summary records that the check leads nowhere, so callers can be told
// the error dies inside this call. A drop under an //arlint:allow
// errflow sentinel is an accepted handoff and sets nothing.
func summarizeErrorDrop(n *CGNode, s *Summary) {
	if s.DropsError {
		return
	}
	sig := n.Func.Type().(*types.Signature)
	for i := 0; i < sig.Results().Len(); i++ {
		if isErrorType(sig.Results().At(i).Type()) {
			return // the function can propagate; not a terminal drop
		}
	}
	info := n.Pkg.Info

	// Collect error vars assigned from calls, with the producing call.
	producers := make(map[types.Object]*ast.CallExpr)
	positions := make(map[types.Object]token.Pos)
	ast.Inspect(n.Decl.Body, func(m ast.Node) bool {
		as, ok := m.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			if !resultIsError(info, call, i, len(as.Lhs)) {
				continue
			}
			obj := info.Defs[id]
			if obj == nil {
				obj = info.Uses[id]
			}
			if obj != nil {
				producers[obj] = call
				positions[obj] = id.Pos()
			}
		}
		return true
	})
	if len(producers) == 0 {
		return
	}

	// An error var is dropped when all its uses are nil comparisons.
	compared := make(map[types.Object]bool)
	escaped := make(map[types.Object]bool)
	ast.Inspect(n.Decl.Body, func(m ast.Node) bool {
		if be, ok := m.(*ast.BinaryExpr); ok && (be.Op == token.EQL || be.Op == token.NEQ) {
			// A sanctioned check is `errVar ==/!= nil`; anything else
			// involving the variable descends into the escape scan.
			if id, ok := identVsNil(info, be); ok {
				if obj := info.Uses[id]; obj != nil && producers[obj] != nil {
					compared[obj] = true
					return false
				}
			}
		}
		if id, ok := m.(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil && producers[obj] != nil {
				escaped[obj] = true // any use outside a nil comparison
			}
		}
		return true
	})
	for obj, call := range producers {
		if compared[obj] && !escaped[obj] {
			if n.Pkg.allowed("errflow", n.Pkg.Fset.Position(positions[obj])) {
				continue
			}
			s.DropsError = true
			s.DropPos = positions[obj]
			s.DropSource = callName(call)
			return
		}
	}
}

// summarizeAlloc records whether the function allocates on every call:
// a make call, a growing append (target not preallocated with explicit
// capacity in the same function), or a static call to a callee that
// does.
//
// A function that touches a sync.Pool (calls Get or Put on one) is a
// pooled allocator: its builtin make/new runs only on the pool-miss
// path, which is exactly the amortization pooling buys, so those do NOT
// mark it as allocating per call. Allocations inherited from callees
// still count — wrapping an allocating helper in a function that also
// happens to use a pool hides nothing.
func summarizeAlloc(sums *Summaries, n *CGNode, s *Summary) {
	if s.Allocates {
		return
	}
	info := n.Pkg.Info
	pooled := usesSyncPool(info, n.Decl.Body)
	ast.Inspect(n.Decl.Body, func(m ast.Node) bool {
		if s.Allocates {
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok {
			if _, builtin := info.Uses[id].(*types.Builtin); builtin {
				if pooled {
					return true // amortized pool-miss allocation
				}
				switch id.Name {
				case "make", "new":
					s.Allocates = true
				case "append":
					if len(call.Args) > 0 && !preallocatedBefore(n.Decl, types.ExprString(call.Args[0]), nil) {
						s.Allocates = true
					}
				}
				return true
			}
		}
		if cs := sums.CalleeSummaryDevirt(info, call); cs != nil && cs.Allocates {
			s.Allocates = true
			s.AllocVia = callName(call)
		}
		return true
	})
}

// usesSyncPool reports whether the body calls Get or Put on a
// sync.Pool — the repository's pooled-buffer idiom.
func usesSyncPool(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(m ast.Node) bool {
		if found {
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Get" && sel.Sel.Name != "Put") {
			return true
		}
		if t := info.TypeOf(sel.X); t != nil && isSyncPoolType(t) {
			found = true
		}
		return true
	})
	return found
}

// isSyncPoolType reports whether t is sync.Pool or *sync.Pool.
func isSyncPoolType(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "Pool"
}

// summarizeTaint runs the maprange taint flow over the function and
// records which result slots a map-iteration-ordered value reaches
// without passing a sort. Calls to callees with tainted results are
// taint sources too, so the nondeterminism is tracked through wrappers.
func summarizeTaint(sums *Summaries, n *CGNode, s *Summary) {
	sig := n.Func.Type().(*types.Signature)
	if sig.Results().Len() == 0 {
		return
	}
	hasSliceOrMap := false
	for i := 0; i < sig.Results().Len(); i++ {
		switch sig.Results().At(i).Type().Underlying().(type) {
		case *types.Slice, *types.Map:
			hasSliceOrMap = true
		}
	}
	if !hasSliceOrMap {
		return
	}
	tainted := mapOrderTaintedResults(n.Pkg, n.Decl, sums)
	for i, t := range tainted {
		if i < len(s.TaintedResults) && t {
			s.TaintedResults[i] = true
		}
	}
}

// summarizeConcurrency records goroutine spawns and per-parameter
// channel / WaitGroup effects, looking through static calls that
// forward a parameter to a callee with a known effect.
func summarizeConcurrency(sums *Summaries, n *CGNode, s *Summary) {
	info := n.Pkg.Info

	// Parameter objects by position for channel/WaitGroup params.
	sig := n.Func.Type().(*types.Signature)
	isParam := make(map[types.Object]int)
	for i := 0; i < sig.Params().Len(); i++ {
		isParam[sig.Params().At(i)] = i
	}
	objOf := func(e ast.Expr) types.Object {
		switch e := ast.Unparen(e).(type) {
		case *ast.Ident:
			return info.Uses[e]
		case *ast.UnaryExpr:
			if e.Op == token.AND {
				if id, ok := ast.Unparen(e.X).(*ast.Ident); ok {
					return info.Uses[id]
				}
			}
		}
		return nil
	}
	mark := func(set []bool, e ast.Expr) {
		if obj := objOf(e); obj != nil {
			if i, ok := isParam[obj]; ok && i < len(set) {
				set[i] = true
			}
		}
	}

	ast.Inspect(n.Decl.Body, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.GoStmt:
			s.SpawnsGoroutine = true
		case *ast.SendStmt:
			mark(s.SendsParams, m.Chan)
		case *ast.UnaryExpr:
			if m.Op == token.ARROW {
				mark(s.DrainsParams, m.X)
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(m.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					mark(s.DrainsParams, m.X)
				}
			}
		case *ast.CallExpr:
			if id, ok := m.Fun.(*ast.Ident); ok && id.Name == "close" {
				if _, builtin := info.Uses[id].(*types.Builtin); builtin && len(m.Args) == 1 {
					mark(s.ClosesParams, m.Args[0])
				}
				return true
			}
			if isWGWaitCall(info, m) {
				s.WaitsOnWG = true
				return true
			}
			// Forwarded effects: passing a parameter to a callee that
			// sends/closes/drains its corresponding parameter (through
			// the candidate join at interface call sites).
			cs := sums.CalleeSummaryDevirt(info, m)
			if cs == nil {
				return true
			}
			if cs.SpawnsGoroutine {
				s.SpawnsGoroutine = true
			}
			if cs.WaitsOnWG {
				s.WaitsOnWG = true
			}
			for ai, arg := range m.Args {
				pi := cs.ParamIndex(ai)
				if pi < 0 {
					break
				}
				if cs.SendsParams[pi] {
					mark(s.SendsParams, arg)
				}
				if cs.ClosesParams[pi] {
					mark(s.ClosesParams, arg)
				}
				if cs.DrainsParams[pi] {
					mark(s.DrainsParams, arg)
				}
			}
		}
		return true
	})

	// DonesParams is a must-fact: Done on every path to return. Run the
	// CFG guarantee analysis once per WaitGroup parameter.
	for i := 0; i < sig.Params().Len(); i++ {
		if s.DonesParams[i] {
			continue
		}
		p := sig.Params().At(i)
		if !isWaitGroupType(p.Type()) {
			continue
		}
		if donesOnAllPaths(sums, n, p) {
			s.DonesParams[i] = true
		}
	}
}

// donesOnAllPaths reports whether every path from entry to exit of n's
// body calls Done on the WaitGroup object wg — directly, via defer, or
// via a static callee whose summary guarantees Done on the forwarded
// parameter.
func donesOnAllPaths(sums *Summaries, n *CGNode, wg types.Object) bool {
	info := n.Pkg.Info
	g := BuildCFG(n.Decl.Body)

	isDoneNode := func(node ast.Node) bool {
		done := false
		visitNode(node, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			if waitGroupDoneCall(info, call, wg) {
				done = true
				return false
			}
			if cs := sums.CalleeSummaryDevirt(info, call); cs != nil {
				for ai, arg := range call.Args {
					if pi := cs.ParamIndex(ai); pi >= 0 && cs.DonesParams[pi] && usesObjectExpr(info, arg, wg) {
						done = true
						return false
					}
				}
			}
			return true
		})
		return done
	}

	// Forward must-analysis: fact = "Done has happened on every path to
	// this point"; join is AND. A defer counts at its registration
	// point: registering `defer wg.Done()` guarantees the Done runs at
	// the exit of every path passing through the DeferStmt node, while
	// paths that skip a conditional defer get no credit — so
	// `if c { defer wg.Done(); return }; work()` covers only the
	// early-return path and the fall-through is still unproven.
	type fact struct{ done bool }
	res := Solve(g, FlowProblem[fact]{
		Entry: fact{false},
		Transfer: func(b *Block, in fact) fact {
			out := in
			for _, node := range b.Nodes {
				if !out.done && isDoneNode(node) {
					out.done = true
				}
			}
			return out
		},
		Join:  func(a, b fact) fact { return fact{a.done && b.done} },
		Equal: func(a, b fact) bool { return a == b },
	})
	return res.Reached[g.Exit.Index] && res.In[g.Exit.Index].done
}

// identVsNil matches a comparison of one identifier against the nil
// literal and returns that identifier.
func identVsNil(info *types.Info, be *ast.BinaryExpr) (*ast.Ident, bool) {
	isNil := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return false
		}
		_, isNilConst := info.Uses[id].(*types.Nil)
		return isNilConst
	}
	if id, ok := ast.Unparen(be.X).(*ast.Ident); ok && isNil(be.Y) {
		return id, true
	}
	if id, ok := ast.Unparen(be.Y).(*ast.Ident); ok && isNil(be.X) {
		return id, true
	}
	return nil, false
}

// waitGroupDoneCall reports whether call is wg.Done() on the given
// WaitGroup object.
func waitGroupDoneCall(info *types.Info, call *ast.CallExpr, wg types.Object) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Done" {
		return false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return false
	}
	return info.Uses[id] == wg
}

// usesObjectExpr reports whether expr references obj (directly or under
// a & operator).
func usesObjectExpr(info *types.Info, expr ast.Expr, obj types.Object) bool {
	return usesObject(info, expr, obj, nil)
}

// summarizeLocks records the function's net lock effect by running the
// lockbalance fact flow: AcquiresLock when some path exits holding a
// lock acquired in the body (ignoring deferred releases would be wrong,
// so they are applied), ReleasesLock when the body unlocks a mutex it
// has not locked on that path.
func summarizeLocks(n *CGNode, s *Summary) {
	if s.AcquiresLock && s.ReleasesLock {
		return
	}
	info := n.Pkg.Info
	g := BuildCFG(n.Decl.Body)

	deferred := make(map[string]bool)
	for _, d := range g.Defers {
		if op, key := classifyLockCall(info, d.Call); op == opUnlock {
			deferred["w "+key] = true
		} else if op == opRUnlock {
			deferred["r "+key] = true
		}
	}

	transfer := func(b *Block, in lockFact) lockFact {
		out := in
		cloned := false
		clone := func() {
			if !cloned {
				c := make(lockFact, len(out)+1)
				for k, v := range out {
					c[k] = v
				}
				out = c
				cloned = true
			}
		}
		for _, node := range b.Nodes {
			if _, isDefer := node.(*ast.DeferStmt); isDefer {
				continue
			}
			for _, call := range callsIn(node) {
				op, key := classifyLockCall(info, call)
				switch op {
				case opLock, opRLock:
					k := "w "
					if op == opRLock {
						k = "r "
					}
					clone()
					out[k+key] = call.Pos()
				case opUnlock, opRUnlock:
					k := "w "
					if op == opRUnlock {
						k = "r "
					}
					if _, held := out[k+key]; !held && !deferred[k+key] {
						s.ReleasesLock = true
					}
					clone()
					delete(out, k+key)
				}
			}
		}
		return out
	}
	res := Solve(g, FlowProblem[lockFact]{
		Entry:    lockFact{},
		Transfer: transfer,
		Join:     func(a, b lockFact) lockFact { return joinPosMap(a, b) },
		Equal:    func(a, b lockFact) bool { return equalPosMap(a, b) },
	})
	if res.Reached[g.Exit.Index] {
		for key := range res.In[g.Exit.Index] {
			if !deferred[key] {
				s.AcquiresLock = true
			}
		}
	}
}

// joinPosMap / equalPosMap are the union join and equality shared by the
// map-shaped facts of this package.
func joinPosMap[K comparable](a, b map[K]token.Pos) map[K]token.Pos {
	if len(b) == 0 {
		return a
	}
	if len(a) == 0 {
		return b
	}
	out := make(map[K]token.Pos, len(a)+len(b))
	for k, v := range a {
		out[k] = v
	}
	for k, v := range b {
		out[k] = v
	}
	return out
}

func equalPosMap[K comparable](a, b map[K]token.Pos) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if w, ok := b[k]; !ok || w != v {
			return false
		}
	}
	return true
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// isWaitGroupType reports whether t is sync.WaitGroup or
// *sync.WaitGroup.
// isWGWaitCall reports a call of sync.WaitGroup.Wait through any
// receiver expression — unlike wgMethodCall it accepts field receivers
// (`sp.wg.Wait()`), because the WaitsOnWG summary fact only records
// that the function blocks on some WaitGroup, not which one.
func isWGWaitCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Wait" {
		return false
	}
	obj := types.Object(nil)
	if s, ok := info.Selections[sel]; ok {
		obj = s.Obj()
	} else {
		obj = info.Uses[sel.Sel]
	}
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	t := info.TypeOf(sel.X)
	return t != nil && isWaitGroupType(t)
}

func isWaitGroupType(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}

// contextArgIndex returns the parameter index of the callee's first
// context.Context parameter (resolved from the call's static type, so
// stdlib and interface callees count), or -1.
func contextArgIndex(info *types.Info, call *ast.CallExpr) int {
	t := info.TypeOf(call.Fun)
	sig, ok := t.(*types.Signature)
	if !ok {
		return -1
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return i
		}
	}
	return -1
}

// contextDerived collects the set of objects carrying the function's
// context: the parameter itself plus every context-typed variable
// assigned from an expression that uses an already-derived object
// (context.WithCancel, WithTimeout, custom wrappers). One forward scan
// per nesting level is enough for the assignment chains in practice;
// the scan repeats until no new object is found.
func contextDerived(info *types.Info, body *ast.BlockStmt, ctx types.Object) map[types.Object]bool {
	derived := map[types.Object]bool{}
	if ctx == nil {
		return derived
	}
	derived[ctx] = true
	for {
		grew := false
		ast.Inspect(body, func(m ast.Node) bool {
			as, ok := m.(*ast.AssignStmt)
			if !ok || len(as.Rhs) != 1 {
				return true
			}
			if !usesAnyObject(info, as.Rhs[0], derived) {
				return true
			}
			for _, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj := info.Defs[id]
				if obj == nil {
					obj = info.Uses[id]
				}
				if obj == nil || !isContextType(obj.Type()) || derived[obj] {
					continue
				}
				derived[obj] = true
				grew = true
			}
			return true
		})
		if !grew {
			return derived
		}
	}
}

// usesAnyObject reports whether node references any object in objs.
func usesAnyObject(info *types.Info, node ast.Node, objs map[types.Object]bool) bool {
	found := false
	ast.Inspect(node, func(m ast.Node) bool {
		if found {
			return false
		}
		if id, ok := m.(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil && objs[obj] {
				found = true
			}
		}
		return true
	})
	return found
}
