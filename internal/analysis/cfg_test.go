package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// parseBody parses src as a file containing one function and returns
// its body.
func parseBody(t *testing.T, src string) *ast.BlockStmt {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "cfg_test_src.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range f.Decls {
		if fn, ok := d.(*ast.FuncDecl); ok {
			return fn.Body
		}
	}
	t.Fatal("no function in source")
	return nil
}

// reachable returns the set of block indices reachable from entry.
func reachable(g *CFG) map[int]bool {
	seen := map[int]bool{}
	var walk func(b *Block)
	walk = func(b *Block) {
		if seen[b.Index] {
			return
		}
		seen[b.Index] = true
		for _, s := range b.Succs {
			walk(s)
		}
	}
	walk(g.Entry)
	return seen
}

func TestCFGStraightLine(t *testing.T) {
	g := BuildCFG(parseBody(t, `package p
func f() {
	x := 1
	x++
	_ = x
}`))
	if len(g.Entry.Nodes) != 3 {
		t.Errorf("entry block has %d nodes, want 3", len(g.Entry.Nodes))
	}
	if !reachable(g)[g.Exit.Index] {
		t.Error("exit not reachable from entry")
	}
}

func TestCFGIfElse(t *testing.T) {
	g := BuildCFG(parseBody(t, `package p
func f(a bool) int {
	if a {
		return 1
	}
	return 2
}`))
	// Both returns must reach exit; exit has ≥2 predecessors.
	if len(g.Exit.Preds) < 2 {
		t.Errorf("exit has %d preds, want ≥2 (one per return)", len(g.Exit.Preds))
	}
}

func TestCFGLoopBackEdge(t *testing.T) {
	g := BuildCFG(parseBody(t, `package p
func f() {
	for i := 0; i < 10; i++ {
		_ = i
	}
}`))
	// The loop head must be its own ancestor: find a cycle.
	r := reachable(g)
	cycle := false
	for _, b := range g.Blocks {
		if !r[b.Index] {
			continue
		}
		for _, s := range b.Succs {
			if s.Index <= b.Index && r[s.Index] {
				cycle = true
			}
		}
	}
	if !cycle {
		t.Error("for loop produced no back edge")
	}
	if !r[g.Exit.Index] {
		t.Error("loop exit unreachable")
	}
}

func TestCFGShortCircuit(t *testing.T) {
	// In `a && g()`, g() must be on a conditional path: there must be
	// an edge from the block evaluating `a` that bypasses g().
	g := BuildCFG(parseBody(t, `package p
func f(a bool, g func() bool) {
	if a && g() {
		_ = 1
	}
}`))
	var aBlock, gBlock *Block
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if id, ok := n.(*ast.Ident); ok && id.Name == "a" {
				aBlock = b
			}
			if call, ok := n.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "g" {
					gBlock = b
				}
			}
		}
	}
	if aBlock == nil || gBlock == nil {
		t.Fatal("condition operands not found in any block")
	}
	if aBlock == gBlock {
		t.Fatal("short-circuit operands share a block; && not decomposed")
	}
	bypass := false
	for _, s := range aBlock.Succs {
		if s != gBlock {
			bypass = true
		}
	}
	if !bypass {
		t.Error("no path bypassing the right operand of &&")
	}
}

func TestCFGBreakContinue(t *testing.T) {
	g := BuildCFG(parseBody(t, `package p
func f(xs []int) int {
	total := 0
	for _, x := range xs {
		if x < 0 {
			continue
		}
		if x > 100 {
			break
		}
		total += x
	}
	return total
}`))
	r := reachable(g)
	if !r[g.Exit.Index] {
		t.Error("exit unreachable with break/continue")
	}
	// The return statement must be reachable.
	foundReturn := false
	for _, b := range g.Blocks {
		if !r[b.Index] {
			continue
		}
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.ReturnStmt); ok {
				foundReturn = true
			}
		}
	}
	if !foundReturn {
		t.Error("return statement unreachable after loop with break")
	}
}

func TestCFGDeferRecorded(t *testing.T) {
	g := BuildCFG(parseBody(t, `package p
func f(unlock func()) {
	defer unlock()
	_ = 1
}`))
	if len(g.Defers) != 1 {
		t.Errorf("recorded %d defers, want 1", len(g.Defers))
	}
}

func TestCFGSwitch(t *testing.T) {
	g := BuildCFG(parseBody(t, `package p
func f(x int) string {
	switch x {
	case 1:
		return "one"
	case 2:
		fallthrough
	case 3:
		return "few"
	}
	return "many"
}`))
	r := reachable(g)
	if !r[g.Exit.Index] {
		t.Error("exit unreachable through switch")
	}
	// Four return statements' blocks plus fallthrough path must all be
	// reachable; count reachable return statements.
	returns := 0
	for _, b := range g.Blocks {
		if !r[b.Index] {
			continue
		}
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.ReturnStmt); ok {
				returns++
			}
		}
	}
	if returns != 3 {
		t.Errorf("reachable returns = %d, want 3", returns)
	}
}

// TestSolveReachingUse exercises the worklist solver with a tiny
// "pending set" analysis: fact = set of block indices seen, join =
// union. The exit fact must contain both branch blocks of an if/else.
func TestSolveReachingUse(t *testing.T) {
	g := BuildCFG(parseBody(t, `package p
func f(a bool) {
	if a {
		_ = 1
	} else {
		_ = 2
	}
}`))
	type fact = map[int]bool
	res := Solve(g, FlowProblem[fact]{
		Entry: fact{},
		Transfer: func(b *Block, in fact) fact {
			out := make(fact, len(in)+1)
			for k := range in {
				out[k] = true
			}
			out[b.Index] = true
			return out
		},
		Join: func(x, y fact) fact {
			out := make(fact, len(x)+len(y))
			for k := range x {
				out[k] = true
			}
			for k := range y {
				out[k] = true
			}
			return out
		},
		Equal: func(x, y fact) bool {
			if len(x) != len(y) {
				return false
			}
			for k := range x {
				if !y[k] {
					return false
				}
			}
			return true
		},
	})
	exitIn := res.In[g.Exit.Index]
	if !res.Reached[g.Exit.Index] {
		t.Fatal("exit not reached by solver")
	}
	// Every reachable block must appear in the exit fact's union.
	for idx := range reachable(g) {
		if idx == g.Exit.Index {
			continue
		}
		if !exitIn[idx] {
			t.Errorf("block %d missing from union fact at exit", idx)
		}
	}
}
