package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ErrFlow enforces that every error produced by a call is checked — or
// explicitly, visibly discarded — on every control-flow path. It is the
// flow-sensitive upgrade of the convention that made the
// internal/objectrank schema-rate drop possible: an `error` silently
// thrown away on a rank-data path turns a data problem into a wrong
// ranking with no trace.
//
// Flagged:
//   - a call statement whose error result is ignored entirely: f()
//   - a blank discard: _ = f(), or v, _ := f() with error in the _ slot
//   - an error assigned to a variable that some path never reads before
//     the function returns or the variable is overwritten
//
// Not flagged:
//   - any read of the variable: if err != nil, return err, passing err
//     to another call, _ = err (discarding a named variable is visible
//     intent; discarding the call result is not)
//   - fmt print functions and writes to strings.Builder/bytes.Buffer
//     (their errors are vestigial)
//   - deferred calls (defer f.Close() is idiomatic shutdown)
//   - //arlint:allow errflow sentinels; -fix rewrites ignored calls to
//     the sentinel form `_ = f() //arlint:allow errflow ...`
//
// The checker is interprocedural through summaries (summary.go): a
// helper that *checks* a callee's error and then discards it — the
// variable's only uses are nil comparisons, and the helper has no error
// result to propagate through — satisfies the intraprocedural rule (the
// error was read) but still loses the error for every caller. The
// helper's summary records the drop, and every call site of such a
// helper is reported: the silent cross-function error drop is no longer
// an analysis hole.
var ErrFlow = &Analyzer{
	Name: "errflow",
	Doc:    "a returned error must be checked or explicitly discarded on every path",
	CanFix: true,
	Run:    runErrFlow,
}

// errFact maps a pending error variable to the position of the
// assignment that produced it. Facts are immutable: transfer copies.
type errFact map[types.Object]token.Pos

func runErrFlow(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		for _, fn := range functionsOf(file) {
			checkErrFlowFunc(pass, fn)
		}
		reportErrorDropperCalls(pass, file)
	}
}

// reportErrorDropperCalls flags every call to a function whose summary
// says it observes a callee's error and discards it without
// propagation. The drop site lives in the callee; the finding lands at
// the caller, because the caller is who loses the error.
func reportErrorDropperCalls(pass *Pass, file *ast.File) {
	info := pass.Pkg.Info
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		cs := pass.Summaries.CalleeSummaryDevirt(info, call)
		if cs == nil || !cs.DropsError {
			return true
		}
		pass.Reportf(call.Pos(),
			"call to %s silently drops the error from %s (checked inside the callee but never propagated); surface it or add an //arlint:allow errflow sentinel at the drop site",
			callName(call), cs.DropSource)
		return true
	})
}

func checkErrFlowFunc(pass *Pass, fn funcBody) {
	info := pass.Pkg.Info
	g := BuildCFG(fn.body)

	// A bare `return` in a function with named results reads every
	// named result variable, including a named error.
	namedResults := make(map[types.Object]bool)
	var results *ast.FieldList
	if fn.decl != nil {
		results = fn.decl.Type.Results
	} else if fn.lit != nil {
		results = fn.lit.Type.Results
	}
	if results != nil {
		for _, field := range results.List {
			for _, name := range field.Names {
				if obj := info.Defs[name]; obj != nil {
					namedResults[obj] = true
				}
			}
		}
	}

	// reported dedupes across paths: union joins can surface the same
	// pending assignment at several blocks.
	reported := make(map[token.Pos]bool)
	report := func(pos token.Pos, fix *SuggestedFix, format string, args ...any) {
		if reported[pos] {
			return
		}
		reported[pos] = true
		if fix != nil {
			pass.ReportfFix(pos, fix, format, args...)
		} else {
			pass.Reportf(pos, format, args...)
		}
	}

	transfer := func(b *Block, in errFact) errFact {
		out := in
		cloned := false
		clone := func() {
			if !cloned {
				c := make(errFact, len(out)+1)
				for k, v := range out {
					c[k] = v
				}
				out = c
				cloned = true
			}
		}
		for _, node := range b.Nodes {
			if ret, ok := node.(*ast.ReturnStmt); ok && ret.Results == nil {
				for obj := range out {
					if namedResults[obj] {
						clone()
						delete(out, obj)
					}
				}
				continue
			}
			if d, ok := node.(*ast.DeferStmt); ok {
				// Deferred calls are exempt from the ignored-result rule,
				// but reading a pending variable inside one still counts.
				for obj := range out {
					if usesObject(info, d.Call, obj, nil) {
						clone()
						delete(out, obj)
					}
				}
				continue
			}
			lhs := assignTargets(node)
			// Reads first: any appearance outside an assignment target
			// settles the pending error.
			for obj := range out {
				if usesObject(info, node, obj, lhs) {
					clone()
					delete(out, obj)
				}
			}
			// Then new definitions and ignored results.
			for _, src := range errorSources(pass, info, node) {
				if src.obj == nil {
					report(src.pos, src.fix, "%s", src.message)
					continue
				}
				if prev, pending := out[src.obj]; pending {
					report(prev, nil,
						"error assigned to %s is overwritten before being checked", src.obj.Name())
				}
				clone()
				out[src.obj] = src.pos
			}
		}
		return out
	}

	res := Solve(g, FlowProblem[errFact]{
		Entry:    errFact{},
		Transfer: transfer,
		Join: func(a, b errFact) errFact {
			if len(b) == 0 {
				return a
			}
			if len(a) == 0 {
				return b
			}
			out := make(errFact, len(a)+len(b))
			for k, v := range a {
				out[k] = v
			}
			for k, v := range b {
				out[k] = v
			}
			return out
		},
		Equal: func(a, b errFact) bool {
			if len(a) != len(b) {
				return false
			}
			for k, v := range a {
				if w, ok := b[k]; !ok || w != v {
					return false
				}
			}
			return true
		},
	})

	if !res.Reached[g.Exit.Index] {
		return // e.g. for {} with no exit path
	}
	for obj, pos := range res.In[g.Exit.Index] {
		report(pos, nil,
			"error assigned to %s is never checked on some path to return in %s", obj.Name(), fn.name)
	}
}

// errorSource is one event the transfer function reacts to: either a
// new pending variable (obj != nil) or an immediate finding (obj ==
// nil, message set).
type errorSource struct {
	obj     types.Object
	pos     token.Pos
	message string
	fix     *SuggestedFix
}

// errorSources extracts the error-producing events of one CFG node.
func errorSources(pass *Pass, info *types.Info, node ast.Node) []errorSource {
	var out []errorSource
	switch s := node.(type) {
	case *ast.ExprStmt:
		call, ok := s.X.(*ast.CallExpr)
		if !ok || !callReturnsError(info, call) || errExempt(info, call) {
			return nil
		}
		fix := &SuggestedFix{
			Message: "explicitly discard the error with a sentinel",
			Edits: []TextEdit{
				{Pos: call.Pos(), End: call.Pos(), NewText: "_ = "},
				{Pos: s.End(), End: s.End(), NewText: " //arlint:allow errflow TODO: justify discarding this error"},
			},
		}
		out = append(out, errorSource{
			pos:     call.Pos(),
			message: fmt.Sprintf("error result of %s is ignored; check it or discard it explicitly", callName(call)),
			fix:     fix,
		})
	case *ast.AssignStmt:
		if len(s.Rhs) != 1 {
			return nil
		}
		call, ok := s.Rhs[0].(*ast.CallExpr)
		if !ok || errExempt(info, call) {
			return nil
		}
		for i, lhs := range s.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			if !resultIsError(info, call, i, len(s.Lhs)) {
				continue
			}
			if id.Name == "_" {
				if len(s.Lhs) == 1 {
					// `_ = f()` alone: visible, but still silent without a
					// reason; the sentinel makes it auditable.
					out = append(out, errorSource{
						pos:     s.Pos(),
						message: fmt.Sprintf("error result of %s is discarded; add an //arlint:allow errflow sentinel with a reason", callName(call)),
						fix:     sentinelFix(s),
					})
				} else {
					out = append(out, errorSource{
						pos:     id.Pos(),
						message: fmt.Sprintf("error result of %s is dropped with _; capture and check it, or add an //arlint:allow errflow sentinel", callName(call)),
						fix:     sentinelFix(s),
					})
				}
				continue
			}
			obj := info.Defs[id]
			if obj == nil {
				obj = info.Uses[id] // plain = assignment
			}
			if v, ok := obj.(*types.Var); ok {
				out = append(out, errorSource{obj: v, pos: id.Pos()})
			}
		}
	}
	return out
}

// sentinelFix appends an //arlint:allow errflow sentinel to the
// statement's line, turning a silent drop into a recorded one.
func sentinelFix(s ast.Stmt) *SuggestedFix {
	return &SuggestedFix{
		Message: "record the discarded error with a sentinel",
		Edits: []TextEdit{
			{Pos: s.End(), End: s.End(), NewText: " //arlint:allow errflow TODO: justify discarding this error"},
		},
	}
}

// assignTargets returns the identifiers written (not read) by node, so
// the use scan can skip them.
func assignTargets(node ast.Node) map[*ast.Ident]bool {
	s, ok := node.(*ast.AssignStmt)
	if !ok {
		return nil
	}
	targets := make(map[*ast.Ident]bool, len(s.Lhs))
	for _, lhs := range s.Lhs {
		if id, ok := lhs.(*ast.Ident); ok {
			targets[id] = true
		}
	}
	return targets
}

// usesObject reports whether node reads obj (appearing anywhere except
// as one of the excluded assignment targets). Function literals inside
// node count as uses: the closure observes the variable.
func usesObject(info *types.Info, node ast.Node, obj types.Object, excluded map[*ast.Ident]bool) bool {
	found := false
	ast.Inspect(node, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || excluded[id] {
			return true
		}
		if info.Uses[id] == obj {
			found = true
		}
		return true
	})
	return found
}

// callReturnsError reports whether any result of call has type error.
func callReturnsError(info *types.Info, call *ast.CallExpr) bool {
	t := info.TypeOf(call)
	if t == nil {
		return false
	}
	if tup, ok := t.(*types.Tuple); ok {
		for i := 0; i < tup.Len(); i++ {
			if isErrorType(tup.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isErrorType(t)
}

// resultIsError reports whether result slot i (of nResults) of call has
// type error.
func resultIsError(info *types.Info, call *ast.CallExpr, i, nResults int) bool {
	t := info.TypeOf(call)
	if t == nil {
		return false
	}
	if tup, ok := t.(*types.Tuple); ok {
		if i >= tup.Len() {
			return false
		}
		return isErrorType(tup.At(i).Type())
	}
	// Single-value call: v := f() or v, ok := m[k] style handled by the
	// caller; only slot 0 exists.
	return i == 0 && nResults == 1 && isErrorType(t)
}

var errorIface = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, errorIface)
}

// errExempt reports whether the call's error is conventionally
// ignorable: fmt printing, and writes to in-memory buffers whose Write
// never fails.
func errExempt(info *types.Info, call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return exemptFuncObj(info.Uses[fun])
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			recv := sel.Recv()
			if ptr, ok := recv.(*types.Pointer); ok {
				recv = ptr.Elem()
			}
			if named, ok := recv.(*types.Named); ok {
				obj := named.Obj()
				if obj.Pkg() != nil {
					switch obj.Pkg().Path() + "." + obj.Name() {
					case "strings.Builder", "bytes.Buffer":
						return true
					}
				}
			}
			return exemptFuncObj(sel.Obj())
		}
		return exemptFuncObj(info.Uses[fun.Sel])
	}
	return false
}

func exemptFuncObj(obj types.Object) bool {
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	if obj.Pkg().Path() != "fmt" {
		return false
	}
	name := obj.Name()
	return strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint") ||
		strings.HasPrefix(name, "Sprint")
}

// callName renders the callee for diagnostics.
func callName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return types.ExprString(fun)
	default:
		return "call"
	}
}
