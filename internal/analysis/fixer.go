package analysis

import (
	"fmt"
	"go/ast"
	"go/format"
	"go/parser"
	"go/token"
	"os"
	"sort"
)

// ApplyFixes applies the suggested fixes attached to diags to the files
// on disk and returns the files rewritten, sorted. Fixes whose edits
// overlap an earlier fix in the same file are skipped — rerunning the
// driver picks them up once the file has settled. Edited files are run
// through go/format, so insertions need not worry about exact
// indentation, and a fix's NeedImport is added to the import set when
// missing.
func ApplyFixes(fset *token.FileSet, diags []Diagnostic) ([]string, error) {
	type fileFixes struct {
		edits   []TextEdit
		imports []string
	}
	perFile := make(map[string]*fileFixes)

	for _, d := range diags {
		if d.Fix == nil || len(d.Fix.Edits) == 0 {
			continue
		}
		filename := fset.Position(d.Fix.Edits[0].Pos).Filename
		ff := perFile[filename]
		if ff == nil {
			ff = &fileFixes{}
			perFile[filename] = ff
		}
		// A fix is all-or-nothing: skip it entirely when any edit
		// overlaps one already accepted for this file.
		overlaps := false
		for _, e := range d.Fix.Edits {
			if fset.Position(e.Pos).Filename != filename {
				return nil, fmt.Errorf("analysis: fix %q spans multiple files", d.Fix.Message)
			}
			for _, prev := range ff.edits {
				if e.Pos < prev.End && prev.Pos < e.End {
					overlaps = true
				}
				// Two insertions at the same point have no defined order.
				if e.Pos == e.End && prev.Pos == prev.End && e.Pos == prev.Pos {
					overlaps = true
				}
			}
		}
		if overlaps {
			continue
		}
		ff.edits = append(ff.edits, d.Fix.Edits...)
		if d.Fix.NeedImport != "" {
			ff.imports = append(ff.imports, d.Fix.NeedImport)
		}
	}

	var changed []string
	for filename, ff := range perFile {
		src, err := os.ReadFile(filename)
		if err != nil {
			return changed, err
		}
		out, err := applyEdits(fset, filename, src, ff.edits)
		if err != nil {
			return changed, err
		}
		for _, path := range ff.imports {
			out, err = ensureImport(out, path)
			if err != nil {
				return changed, fmt.Errorf("analysis: adding import %q to %s: %w", path, filename, err)
			}
		}
		formatted, err := format.Source(out)
		if err != nil {
			return changed, fmt.Errorf("analysis: fixed %s does not parse: %w", filename, err)
		}
		if err := os.WriteFile(filename, formatted, 0o644); err != nil {
			return changed, err
		}
		changed = append(changed, filename)
	}
	sort.Strings(changed)
	return changed, nil
}

// applyEdits replaces each edit's [Pos, End) range in src, working from
// the end of the file backwards so earlier offsets stay valid.
func applyEdits(fset *token.FileSet, filename string, src []byte, edits []TextEdit) ([]byte, error) {
	sorted := make([]TextEdit, len(edits))
	copy(sorted, edits)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Pos > sorted[j].Pos })
	for _, e := range sorted {
		start := fset.Position(e.Pos).Offset
		end := fset.Position(e.End).Offset
		if start < 0 || end < start || end > len(src) {
			return nil, fmt.Errorf("analysis: edit range [%d,%d) out of bounds in %s", start, end, filename)
		}
		src = append(src[:start], append([]byte(e.NewText), src[end:]...)...)
	}
	return src, nil
}

// ensureImport adds an import of path to the source when missing: into
// the first parenthesized import block if there is one, as a new import
// declaration after the package clause otherwise. go/format later sorts
// the block, so placement inside it does not matter.
func ensureImport(src []byte, path string) ([]byte, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fix.go", src, parser.ImportsOnly)
	if err != nil {
		return nil, err
	}
	for _, imp := range f.Imports {
		if imp.Path.Value == `"`+path+`"` {
			return src, nil
		}
	}
	insertAt := fset.Position(f.Name.End()).Offset
	text := fmt.Sprintf("\n\nimport %q", path)
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.IMPORT {
			continue
		}
		if gd.Lparen.IsValid() {
			insertAt = fset.Position(gd.Lparen).Offset + 1
			text = fmt.Sprintf("\n%q\n", path)
			break
		}
	}
	out := make([]byte, 0, len(src)+len(text))
	out = append(out, src[:insertAt]...)
	out = append(out, text...)
	out = append(out, src[insertAt:]...)
	return out, nil
}
