package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"io"
	"sort"
	"strings"
)

// This file builds the package-level static call graph of the analyzed
// packages: one node per declared function or method, one edge per call
// site whose callee resolves statically. It is the substrate of the
// interprocedural checkers — summaries (summary.go) are computed
// bottom-up over its strongly-connected components, so a checker asking
// "does this callee swallow an error / allocate / call Done?" gets an
// answer that already accounts for the callee's own callees.
//
// Resolution rules, deliberately conservative (a missed edge weakens a
// summary toward "unknown", it never invents behavior):
//
//   - plain calls f(...) and qualified cross-package calls pkg.F(...)
//     resolve through go/types object use;
//   - method calls x.M(...) resolve through go/types selections when the
//     receiver's static type is concrete — the types actually used in
//     this repository. Calls through interface values are not resolved
//     (any implementation could run) and contribute no edge;
//   - calls inside nested function literals are attributed to the
//     enclosing declared function: the literal runs on the declaring
//     function's behalf (worker goroutines, sort closures), so its
//     effects belong to that function's summary;
//   - calls to functions outside the analyzed packages (stdlib, other
//     modules) contribute no edge and are summarized as effect-free.

// CGNode is one declared function or method in the call graph.
type CGNode struct {
	// Func is the type-checker's object for the function.
	Func *types.Func
	// Decl is the syntax, always with a non-nil body.
	Decl *ast.FuncDecl
	// Pkg is the package the function is declared in.
	Pkg *Package
	// Calls are the distinct static callees within the analyzed set, in
	// first-call-site order.
	Calls []*CGNode
	// Candidates are the distinct known-implementation callees of the
	// node's interface-method call sites (devirtualization): for each
	// dynamic call x.M() with x of interface type I, every analyzed
	// concrete type implementing I contributes its M. Candidate edges
	// participate in the SCC condensation — a summary fact flowing
	// through an interface seam still needs bottom-up ordering — but
	// are kept apart from Calls so checkers can distinguish "will call"
	// from "may call one of".
	Candidates []*CGNode
	// Callers are the distinct nodes with an edge into this one.
	Callers []*CGNode
	// SCC is the index of the node's strongly-connected component in
	// CallGraph.SCCs.
	SCC int
}

// String renders the node as pkgname.Func or pkgname.(Recv).Method.
func (n *CGNode) String() string {
	name := n.Func.Name()
	if recv := n.Func.Type().(*types.Signature).Recv(); recv != nil {
		t := recv.Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			name = named.Obj().Name() + "." + name
		}
	}
	return n.Pkg.Name + "." + name
}

// CallGraph is the static call graph of a set of analyzed packages.
type CallGraph struct {
	// Nodes holds every declared function with a body, in source order
	// (file name, then position).
	Nodes []*CGNode
	// SCCs is the condensation in bottom-up order: every callee of a
	// node in SCCs[i] lies in SCCs[j] with j <= i. Summaries iterate
	// this slice forward. Candidate (devirtualized) edges count as
	// edges here.
	SCCs [][]*CGNode

	byFunc map[*types.Func]*CGNode
	// ifaceImpls maps an interface method object to the analyzed
	// concrete methods implementing it, in deterministic (package,
	// type-name) order.
	ifaceImpls map[*types.Func][]*CGNode
}

// NodeOf returns the node for fn, or nil when fn is not an analyzed
// declared function (stdlib, interface method, func literal).
func (cg *CallGraph) NodeOf(fn *types.Func) *CGNode {
	if cg == nil || fn == nil {
		return nil
	}
	return cg.byFunc[fn.Origin()]
}

// BuildCallGraph constructs the call graph of pkgs and its SCC
// condensation.
func BuildCallGraph(pkgs []*Package) *CallGraph {
	cg := &CallGraph{byFunc: make(map[*types.Func]*CGNode)}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				node := &CGNode{Func: fn, Decl: fd, Pkg: pkg}
				cg.Nodes = append(cg.Nodes, node)
				cg.byFunc[fn] = node
			}
		}
	}
	sort.Slice(cg.Nodes, func(i, j int) bool {
		a := cg.Nodes[i].Pkg.Fset.Position(cg.Nodes[i].Decl.Pos())
		b := cg.Nodes[j].Pkg.Fset.Position(cg.Nodes[j].Decl.Pos())
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Offset < b.Offset
	})

	for _, node := range cg.Nodes {
		seen := make(map[*CGNode]bool)
		ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := StaticCallee(node.Pkg.Info, call)
			if callee == nil {
				return true
			}
			target := cg.NodeOf(callee)
			if target == nil || seen[target] {
				return true
			}
			seen[target] = true
			node.Calls = append(node.Calls, target)
			target.Callers = append(target.Callers, node)
			return true
		})
	}

	cg.buildDevirt(pkgs)
	cg.condense()
	return cg
}

// buildDevirt computes the known-implementation table and the candidate
// edges. For every named interface declared in the analyzed packages
// and every named concrete type in the same set, types.Implements
// decides (for T and *T) whether the type satisfies the interface; each
// satisfied interface method then maps to the concrete method the
// method set selects. The enumeration is conservative in the only
// direction that matters: a type outside the analyzed set contributes
// no candidate, so consumers must keep treating a candidate list as
// "at least these" — CalleeSummaryDevirt documents why the join is
// still sound for the checkers that use it.
func (cg *CallGraph) buildDevirt(pkgs []*Package) {
	cg.ifaceImpls = make(map[*types.Func][]*CGNode)

	var ifaces []*types.Interface
	var concretes []types.Type
	for _, pkg := range pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || named.TypeParams().Len() > 0 {
				continue // generic types would need per-instantiation work
			}
			if iface, ok := named.Underlying().(*types.Interface); ok {
				if iface.NumMethods() > 0 {
					ifaces = append(ifaces, iface)
				}
			} else {
				concretes = append(concretes, named)
			}
		}
	}

	seen := make(map[*types.Func]map[*CGNode]bool)
	for _, iface := range ifaces {
		for _, T := range concretes {
			impl := T
			if !types.Implements(T, iface) {
				if ptr := types.NewPointer(T); types.Implements(ptr, iface) {
					impl = ptr
				} else {
					continue
				}
			}
			ms := types.NewMethodSet(impl)
			for i := 0; i < iface.NumMethods(); i++ {
				im := iface.Method(i)
				sel := ms.Lookup(im.Pkg(), im.Name())
				if sel == nil {
					continue
				}
				f, ok := sel.Obj().(*types.Func)
				if !ok {
					continue
				}
				node := cg.byFunc[f.Origin()]
				if node == nil {
					continue // implementation without an analyzed body
				}
				key := im.Origin()
				if seen[key] == nil {
					seen[key] = make(map[*CGNode]bool)
				}
				if !seen[key][node] {
					seen[key][node] = true
					cg.ifaceImpls[key] = append(cg.ifaceImpls[key], node)
				}
			}
		}
	}

	// Candidate edges: one per (caller, implementation) over the
	// interface-method call sites of each body.
	for _, node := range cg.Nodes {
		dedup := make(map[*CGNode]bool)
		ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			m := InterfaceCallee(node.Pkg.Info, call)
			if m == nil {
				return true
			}
			for _, target := range cg.ifaceImpls[m] {
				if !dedup[target] {
					dedup[target] = true
					node.Candidates = append(node.Candidates, target)
				}
			}
			return true
		})
	}
}

// InterfaceCallee resolves a dynamic method call x.M() through an
// interface-typed receiver to the interface's method object, or nil
// when the call is not an interface-method call. This is the key the
// devirtualizer's candidate table is indexed by.
func InterfaceCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	selection, ok := info.Selections[sel]
	if !ok {
		return nil
	}
	f, ok := selection.Obj().(*types.Func)
	if !ok || !types.IsInterface(selection.Recv()) {
		return nil
	}
	return f.Origin()
}

// CandidatesOf returns the known implementations of the interface
// method called by call, or nil for static and unresolvable calls.
func (cg *CallGraph) CandidatesOf(info *types.Info, call *ast.CallExpr) []*CGNode {
	if cg == nil {
		return nil
	}
	m := InterfaceCallee(info, call)
	if m == nil {
		return nil
	}
	return cg.ifaceImpls[m]
}

// StaticCallee resolves the callee of a call expression to a declared
// function object, or nil when the callee is dynamic: a func value, a
// method call through an interface, a builtin, or a conversion.
func StaticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f.Origin()
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			// Method call x.M(): resolvable only when the receiver's
			// static type is concrete.
			f, ok := sel.Obj().(*types.Func)
			if !ok {
				return nil
			}
			if types.IsInterface(sel.Recv()) {
				return nil
			}
			return f.Origin()
		}
		// Qualified call pkg.F().
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f.Origin()
		}
	}
	return nil
}

// condense runs Tarjan's algorithm and records the strongly-connected
// components in completion order, which for Tarjan is bottom-up: every
// SCC reachable from component i is completed — and therefore listed —
// before i.
func (cg *CallGraph) condense() {
	const unvisited = -1
	index := make(map[*CGNode]int, len(cg.Nodes))
	low := make(map[*CGNode]int, len(cg.Nodes))
	onStack := make(map[*CGNode]bool, len(cg.Nodes))
	for _, n := range cg.Nodes {
		index[n] = unvisited
	}
	var stack []*CGNode
	next := 0

	var strongConnect func(v *CGNode)
	strongConnect = func(v *CGNode) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, edges := range [2][]*CGNode{v.Calls, v.Candidates} {
			for _, w := range edges {
				if index[w] == unvisited {
					strongConnect(w)
					if low[w] < low[v] {
						low[v] = low[w]
					}
				} else if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
			}
		}
		if low[v] == index[v] {
			var scc []*CGNode
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				w.SCC = len(cg.SCCs)
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			cg.SCCs = append(cg.SCCs, scc)
		}
	}
	for _, n := range cg.Nodes {
		if index[n] == unvisited {
			strongConnect(n)
		}
	}
}

// WriteDot renders the call graph in Graphviz dot form (the driver's
// -callgraph=dot debug mode). When sums is non-nil, each node's label
// carries its non-trivial summary bits in brackets, so the effect a
// checker sees through a call is visible in the drawing.
func (cg *CallGraph) WriteDot(w io.Writer, sums *Summaries) error {
	if _, err := fmt.Fprintln(w, "digraph callgraph {"); err != nil {
		return err
	}
	fmt.Fprintln(w, "  rankdir=LR;")
	fmt.Fprintln(w, "  node [shape=box, fontsize=10];")
	idOf := make(map[*CGNode]int, len(cg.Nodes))
	for i, n := range cg.Nodes {
		idOf[n] = i
	}
	id := func(n *CGNode) string { return fmt.Sprintf("n%d", idOf[n]) }
	for _, n := range cg.Nodes {
		// Dot's own escape for a label line break is the two-character
		// sequence \n, so the label is quoted by hand rather than with
		// %q (which would escape the backslash).
		label := strings.ReplaceAll(n.String(), `"`, `\"`)
		if sums != nil {
			if bits := sums.Of(n.Func).bits(); bits != "" {
				label += `\n[` + bits + `]`
			}
		}
		attrs := fmt.Sprintf(`label="%s"`, label)
		if len(cg.SCCs[n.SCC]) > 1 {
			attrs += fmt.Sprintf(", color=red, xlabel=\"scc%d\"", n.SCC)
		}
		fmt.Fprintf(w, "  %s [%s];\n", id(n), attrs)
	}
	for _, n := range cg.Nodes {
		static := make(map[*CGNode]bool, len(n.Calls))
		for _, c := range n.Calls {
			static[c] = true
			fmt.Fprintf(w, "  %s -> %s;\n", id(n), id(c))
		}
		// Candidate (devirtualized) edges render dashed; a target also
		// called statically keeps only its solid edge.
		for _, c := range n.Candidates {
			if !static[c] {
				fmt.Fprintf(w, "  %s -> %s [style=dashed];\n", id(n), id(c))
			}
		}
	}
	if sums != nil {
		cg.writeDotSharedLocations(w, sums)
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

// writeDotSharedLocations renders the concurrency layer into the
// drawing: module-visible shared locations (global-rooted accesses in
// the summaries) as filled boxes, and one dotted edge per distinct
// (function, location, kind, lockset) access, labeled "R"/"W" plus the
// guarding lockset and a "go" marker for accesses made on a spawned
// goroutine — so a location with two unlabeled "W go" edges is a race
// you can see.
func (cg *CallGraph) writeDotSharedLocations(w io.Writer, sums *Summaries) {
	locID := make(map[string]string)
	nextLoc := 0
	seenEdge := make(map[string]bool)
	for i, n := range cg.Nodes {
		s := sums.Of(n.Func)
		if s == nil {
			continue
		}
		for _, acc := range s.Accesses {
			if acc.Loc.Kind != locGlobal {
				continue
			}
			key := acc.Loc.key()
			lid, ok := locID[key]
			if !ok {
				lid = fmt.Sprintf("loc%d", nextLoc)
				nextLoc++
				locID[key] = lid
				label := strings.ReplaceAll(acc.Loc.Name, `"`, `\"`)
				fmt.Fprintf(w, "  %s [label=\"%s\", shape=box, style=filled, fillcolor=lightyellow];\n", lid, label)
			}
			label := "R"
			if acc.Write {
				label = "W"
			}
			if len(acc.Locks) > 0 {
				label += " " + lockSetName(acc.Locks)
			}
			if acc.Concurrent {
				label += " go"
			}
			ek := fmt.Sprintf("n%d->%s:%s", i, lid, label)
			if seenEdge[ek] {
				continue
			}
			seenEdge[ek] = true
			label = strings.ReplaceAll(label, `"`, `\"`)
			fmt.Fprintf(w, "  n%d -> %s [style=dotted, label=\"%s\", fontsize=9];\n", i, lid, label)
		}
	}
}

// bits renders a summary's non-trivial flags for the dot label.
func (s *Summary) bits() string {
	if s == nil {
		return ""
	}
	var out []string
	// The purity lattice point leads: Impure is the unmarked default,
	// the two provable levels are worth showing.
	switch s.Purity {
	case PurityPure:
		out = append(out, "pure")
	case PurityOutput:
		out = append(out, "out-writes")
	}
	if s.DropsError {
		out = append(out, "drops-err")
	}
	if s.Allocates {
		out = append(out, "alloc")
	}
	for i, t := range s.TaintedResults {
		if t {
			out = append(out, fmt.Sprintf("map-order(res%d)", i))
		}
	}
	if s.SpawnsGoroutine {
		out = append(out, "spawn")
	}
	if s.WaitsOnWG {
		out = append(out, "waits")
	}
	if s.SpawnChurn {
		out = append(out, "spawn-churn")
	}
	if cl := s.Cost.label(); cl != "" {
		out = append(out, cl)
	}
	for i, d := range s.DonesParams {
		if d {
			out = append(out, fmt.Sprintf("done(p%d)", i))
		}
	}
	for i, c := range s.ClosesParams {
		if c {
			out = append(out, fmt.Sprintf("close(p%d)", i))
		}
	}
	for i, r := range s.DrainsParams {
		if r {
			out = append(out, fmt.Sprintf("drain(p%d)", i))
		}
	}
	if s.CtxParam >= 0 {
		out = append(out, fmt.Sprintf("ctx(p%d)", s.CtxParam))
	}
	if s.AcquiresLock {
		out = append(out, "lock+")
	}
	if s.ReleasesLock {
		out = append(out, "lock-")
	}
	if len(s.Accesses) > 0 {
		out = append(out, fmt.Sprintf("shared(%d)", len(s.Accesses)))
	}
	if len(s.AcquiredLocks) > 0 {
		out = append(out, fmt.Sprintf("acquires(%d)", len(s.AcquiredLocks)))
	}
	return strings.Join(out, ",")
}
