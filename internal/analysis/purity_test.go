package analysis

import "testing"

// TestPurityLattice pins the three-level classification on the shapes
// the repository's kernels are made of: strictly pure reads, the
// out-writes output-buffer shape, locally-owned allocation, and the
// ways a function falls to impure (global writes, channel ops,
// impure or unknown callees — directly or transitively).
func TestPurityLattice(t *testing.T) {
	pkgs := writeModule(t, map[string]string{
		"pure/pure.go": `package pure

import "math"

var counter int

func Add(a, b float64) float64 { return a + b }

func Abs(x float64) float64 { return math.Abs(x) }

func Fill(dst []float64, v float64) {
	for i := range dst {
		dst[i] = v
	}
}

func Owned(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = 1
	}
	return out
}

func Bump() { counter++ }

func Via() { Bump() }

func Send(ch chan int) { ch <- 1 }

func Spawn() { go Bump() }
`,
	})
	cg := BuildCallGraph([]*Package{pkgs["pure"]})
	sums := ComputeSummaries(cg)
	get := func(name string) *Summary {
		s := sums.Of(nodeByName(t, cg, "pure."+name).Func)
		if s == nil {
			t.Fatalf("no summary for pure.%s", name)
		}
		return s
	}

	if s := get("Add"); s.Purity != PurityPure {
		t.Errorf("Add: purity %v (%s), want pure", s.Purity, s.PurityCause)
	}
	if s := get("Abs"); s.Purity != PurityPure {
		t.Errorf("Abs: purity %v (%s), want pure (math is whitelisted)", s.Purity, s.PurityCause)
	}
	if s := get("Fill"); s.Purity != PurityOutput || !s.WritesParams[0] || s.WritesParams[1] {
		t.Errorf("Fill: purity %v WritesParams %v, want out-writes through param 0 only", s.Purity, s.WritesParams)
	}
	if s := get("Owned"); s.Purity != PurityPure || !s.Allocates {
		t.Errorf("Owned: purity %v Allocates %v, want pure+alloc (writes confined to an owned buffer)", s.Purity, s.Allocates)
	}
	if s := get("Bump"); s.Purity != PurityImpure {
		t.Errorf("Bump: purity %v, want impure (global write)", s.Purity)
	}
	if s := get("Via"); s.Purity != PurityImpure {
		t.Errorf("Via: purity %v, want impure (impure callee)", s.Purity)
	}
	if s := get("Send"); s.Purity != PurityImpure {
		t.Errorf("Send: purity %v, want impure (channel op)", s.Purity)
	}
	if s := get("Spawn"); s.Purity != PurityImpure {
		t.Errorf("Spawn: purity %v, want impure (go statement)", s.Purity)
	}
}

// TestPuritySCCConvergence exercises the within-SCC fixpoint: a
// mutually recursive pure pair must converge at pure (the optimistic
// start is not knocked down by the cycle), an out-writes self-recursion
// stays at out-writes, and one impure statement anywhere in a cycle
// drags every member to impure.
func TestPuritySCCConvergence(t *testing.T) {
	pkgs := writeModule(t, map[string]string{
		"rec/rec.go": `package rec

var hits int

func Even(n int) bool {
	if n == 0 {
		return true
	}
	return Odd(n - 1)
}

func Odd(n int) bool {
	if n == 0 {
		return false
	}
	return Even(n - 1)
}

func RFill(dst []float64, i int) {
	if i < len(dst) {
		dst[i] = 0
		RFill(dst, i+1)
	}
}

func PingI(n int) {
	if n > 0 {
		hits++
		PongI(n - 1)
	}
}

func PongI(n int) {
	if n > 0 {
		PingI(n - 1)
	}
}
`,
	})
	cg := BuildCallGraph([]*Package{pkgs["rec"]})
	sums := ComputeSummaries(cg)
	get := func(name string) *Summary {
		s := sums.Of(nodeByName(t, cg, "rec."+name).Func)
		if s == nil {
			t.Fatalf("no summary for rec.%s", name)
		}
		return s
	}

	if s := get("Even"); s.Purity != PurityPure {
		t.Errorf("Even: purity %v (%s), want pure through the cycle", s.Purity, s.PurityCause)
	}
	if s := get("Odd"); s.Purity != PurityPure {
		t.Errorf("Odd: purity %v (%s), want pure through the cycle", s.Purity, s.PurityCause)
	}
	if s := get("RFill"); s.Purity != PurityOutput || !s.WritesParams[0] {
		t.Errorf("RFill: purity %v WritesParams %v, want out-writes through param 0", s.Purity, s.WritesParams)
	}
	if s := get("PingI"); s.Purity != PurityImpure {
		t.Errorf("PingI: purity %v, want impure (writes a global inside the cycle)", s.Purity)
	}
	if s := get("PongI"); s.Purity != PurityImpure {
		t.Errorf("PongI: purity %v, want impure (impurity must propagate around the cycle)", s.Purity)
	}
}
