// Package fixture triggers the normreturn checker: exported score
// producers that never normalize their output.
package fixture

// ComputeScores is rank-like by function name and returns raw weights.
func ComputeScores(n int) []float64 {
	scores := make([]float64, n)
	for i := range scores {
		scores[i] = float64(i + 1)
	}
	return scores
}

// Rank is rank-like by its declared result name.
func Rank(weights []float64) (r []float64) {
	r = make([]float64, len(weights))
	copy(r, weights)
	return r
}
