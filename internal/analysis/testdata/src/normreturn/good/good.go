// Package fixture is clean under the normreturn checker: producers
// normalize, delegate, are unexported, or are not score vectors.
package fixture

// ComputeScores normalizes before returning.
func ComputeScores(n int) []float64 {
	scores := make([]float64, n)
	for i := range scores {
		scores[i] = float64(i + 1)
	}
	normalize(scores)
	return scores
}

// WrapScores is a single-return delegation wrapper (the top-level API
// pattern): the callee owns the invariant.
func WrapScores(n int) []float64 {
	return ComputeScores(n)
}

// rawScores is unexported: internal helpers may defer normalization to
// their exported callers.
func rawScores(n int) []float64 {
	return make([]float64, n)
}

// Distances returns a []float64 that is not a score vector: neither the
// function name nor a result name is rank-like.
func Distances(n int) []float64 {
	return make([]float64, n)
}

// UniformRank is normalized by construction and says so.
//
//arlint:allow normreturn uniform vector sums to 1 by construction
func UniformRank(n int) []float64 {
	r := make([]float64, n)
	for i := range r {
		r[i] = 1 / float64(n)
	}
	return r
}

func normalize(v []float64) {
	sum := 0.0
	for _, x := range v {
		sum += x
	}
	if sum <= 0 {
		return
	}
	for i := range v {
		v[i] /= sum
	}
}
