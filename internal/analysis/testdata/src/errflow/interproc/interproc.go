// Package fixture exercises the interprocedural errflow layer: a
// helper that checks an error but cannot propagate it (no error
// result) swallows it, and its callers are flagged — the hole the
// intraprocedural checker cannot see, because the nil-check counts as
// a read inside the helper.
package fixture

import "errors"

func work() error { return errors.New("boom") }

// logOnly checks the error from work but has no error result: the
// error dies here. Intraprocedurally this is clean.
func logOnly() {
	if err := work(); err != nil {
		return
	}
}

// caller is flagged: calling logOnly silently drops work's error.
func caller() {
	logOnly()
}

// propagates surfaces the error, so its callers are not flagged.
func propagates() error {
	if err := work(); err != nil {
		return err
	}
	return nil
}

// cleanCaller handles the propagated error itself.
func cleanCaller() error {
	return propagates()
}
