// Package fixture stays clean under the errflow checker: every error is
// checked, visibly discarded, or conventionally ignorable.
package fixture

import (
	"errors"
	"fmt"
	"strings"
)

func work() error { return errors.New("boom") }

// checked reads the error on every path.
func checked() error {
	if err := work(); err != nil {
		return err
	}
	return nil
}

// branches checks the error on both arms before returning.
func branches(cond bool) error {
	err := work()
	if cond {
		return fmt.Errorf("wrapped: %w", err)
	}
	return err
}

// sentinel discards visibly, with a recorded reason.
func sentinel() {
	_ = work() //arlint:allow errflow fixture: the error is irrelevant here
}

// named returns a pending error through a bare return.
func named() (err error) {
	err = work()
	return
}

// printing and in-memory buffers are exempt: their errors are vestigial.
func printing(sb *strings.Builder) {
	fmt.Println("x")
	sb.WriteString("y")
}

// deferred cleanup calls are idiomatic shutdown, not drops.
func deferred(f func() error) {
	defer f()
}
