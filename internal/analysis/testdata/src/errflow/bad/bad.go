// Package fixture triggers the errflow checker: errors produced by
// calls that are ignored, silently discarded, or left unchecked on some
// control-flow path.
package fixture

import (
	"errors"
	"os"
)

func work() error { return errors.New("boom") }

// drop ignores the error result outright.
func drop() {
	work()
}

// blank discards the call result with _ and no sentinel.
func blank() {
	_ = work()
}

// slotDrop drops the error slot of a multi-result call.
func slotDrop() *os.File {
	f, _ := os.Open("x")
	return f
}

// unchecked assigns the error but returns without reading it on the
// early path.
func unchecked(cond bool) int {
	err := work()
	if cond {
		return 1
	}
	if err != nil {
		return 2
	}
	return 0
}

// overwritten reassigns the pending error before checking it.
func overwritten() error {
	err := work()
	err = work()
	return err
}
