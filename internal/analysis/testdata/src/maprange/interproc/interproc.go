// Package fixture exercises the interprocedural maprange layer: the
// map range lives in an unexported helper (not itself a score
// producer), and the exported producer returning the helper's result
// is flagged — moving the range into a helper no longer hides it.
package fixture

import "sort"

// assemble builds a slice in map-iteration order; its summary marks
// the result as order-tainted.
func assemble(weights map[int]float64) []float64 {
	var out []float64
	for _, w := range weights {
		out = append(out, w)
	}
	return out
}

// HelperScores returns the helper-assembled, map-ordered data.
func HelperScores(weights map[int]float64) []float64 {
	return assemble(weights)
}

// AssignedScores routes the tainted result through a local first.
func AssignedScores(weights map[int]float64) []float64 {
	scores := assemble(weights)
	return scores
}

// SortedScores settles the order before returning: clean.
func SortedScores(weights map[int]float64) []float64 {
	scores := assemble(weights)
	sort.Float64s(scores)
	return scores
}
