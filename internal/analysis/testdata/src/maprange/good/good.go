// Package fixture stays clean under the maprange checker: map iteration
// is either sorted before reaching the result or order-independent.
package fixture

import "sort"

// ComputeScores iterates over sorted keys, so output order is stable.
func ComputeScores(weights map[int]float64) []float64 {
	keys := make([]int, 0, len(weights))
	for k := range weights {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	scores := make([]float64, 0, len(keys))
	for _, k := range keys {
		scores = append(scores, weights[k])
	}
	return scores
}

// FillScores writes into per-key slots: each slot gets the same value
// regardless of iteration order, so nothing is flagged.
func FillScores(weights map[int]float64) []float64 {
	scores := make([]float64, len(weights))
	for k, w := range weights {
		scores[k] = w
	}
	return scores
}

// CountScores accumulates an integer count; integer addition commutes,
// only float and string accumulation taints.
func CountScores(weights map[int]float64) ([]float64, int) {
	n := 0
	for range weights {
		n++
	}
	return make([]float64, n), n
}
