// Package fixture triggers the maprange checker: map iteration order
// reaching the returned score data of exported score producers.
package fixture

// ComputeScores assembles the ranking in map-iteration order — two runs
// of the same binary can return differently-ordered scores.
func ComputeScores(weights map[int]float64) []float64 {
	var scores []float64
	for id, w := range weights {
		_ = id
		scores = append(scores, w)
	}
	return scores
}

// TotalScore accumulates a float in iteration order; float addition is
// not associative, so the sum depends on the order.
func TotalScore(weights map[int]float64) []float64 {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	return []float64{total}
}
