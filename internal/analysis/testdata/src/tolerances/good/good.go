// Package fixture is clean under the tolerances checker: tolerances
// flow in as named references, guards compare against parameters, and
// non-tolerance literals are untouched.
package fixture

import "math"

// Options mirrors the repository's ranker option structs.
type Options struct {
	Tolerance float64
	Epsilon   float64
}

// canonicalTol stands in for numeric.DefaultTolerance: a reference, not
// a literal, reaches every use site.
var canonicalTol = defaultTolerance()

func defaultTolerance() float64 { return 1e-5 } // not a tolerance-named target

// fill references the canonical value.
func fill(o *Options, canonEps float64) {
	if o.Tolerance == 0 {
		o.Tolerance = canonicalTol
	}
	if o.Epsilon == 0 {
		o.Epsilon = canonEps
	}
}

// defaults passes a reference through a composite literal.
func defaults() Options {
	return Options{Tolerance: canonicalTol}
}

// sumsToOne guards against a parameter, not a literal.
func sumsToOne(sum, slack float64) bool {
	return math.Abs(sum-1) < slack
}

// restart is a genuinely local one-off and says so.
func restart(o *Options) {
	//arlint:allow tolerances teleport probability local to this fixture
	o.Epsilon = 0.99
}

// area uses a float literal in a non-tolerance position.
func area(r float64) float64 {
	return 3.14159 * r * r
}
