// Package fixture triggers the tolerances checker: tolerance, damping
// and epsilon literals that bypass the canonical constants.
package fixture

import "math"

// Options mirrors the repository's ranker option structs.
type Options struct {
	Tolerance float64
	Epsilon   float64
}

// fill hard-codes defaults instead of referencing internal/numeric.
func fill(o *Options) {
	if o.Tolerance == 0 {
		o.Tolerance = 1e-5
	}
	if o.Epsilon == 0 {
		o.Epsilon = 0.85
	}
}

// defaults embeds a literal in a composite-literal field.
func defaults() Options {
	return Options{Tolerance: 1e-8}
}

// sumsToOne is the tolerance-guard idiom against a raw literal.
func sumsToOne(sum float64) bool {
	return math.Abs(sum-1) < 1e-6
}

// innerTolerance declares a tolerance-named constant with a literal.
const innerTolerance = 1e-9
