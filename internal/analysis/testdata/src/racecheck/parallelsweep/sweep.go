// Package fixture mirrors the repo's edge-partitioned parallel pull
// sweep: every goroutine writes a disjoint output range selected by its
// worker index, per-part deltas land in worker-indexed slots, and the
// parent reads results only after the join. racecheck must stay silent.
package fixture

import "sync"

type csr struct {
	rowPtr []int32
	cols   []int32
	vals   []float64
}

// sweepRange writes out[lo:hi) from cur — the per-worker kernel.
func (c *csr) sweepRange(out, cur []float64, lo, hi int) float64 {
	delta := 0.0
	for i := lo; i < hi; i++ {
		sum := 0.0
		for e := c.rowPtr[i]; e < c.rowPtr[i+1]; e++ {
			sum += cur[c.cols[e]] * c.vals[e]
		}
		d := sum - out[i]
		if d < 0 {
			d = -d
		}
		out[i] = sum
		delta += d
	}
	return delta
}

// parallelSweep fans the rows out over disjoint [bounds[w], bounds[w+1])
// ranges: sibling writes to next land at worker-distinct indices, the
// per-part deltas use the worker-indexed slot pattern, and the parent
// sums them only after wg.Wait.
func (c *csr) parallelSweep(next, cur []float64, bounds []int, partDeltas []float64) float64 {
	parts := len(bounds) - 1
	var wg sync.WaitGroup
	for w := 0; w < parts; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			partDeltas[w] = c.sweepRange(next, cur, bounds[w], bounds[w+1])
		}(w)
	}
	wg.Wait()
	delta := 0.0
	for _, d := range partDeltas[:parts] {
		delta += d
	}
	return delta
}
