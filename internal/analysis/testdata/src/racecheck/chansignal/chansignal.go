// Package fixture exercises channel-based happens-before edges: a
// receive from the goroutine's completion channel orders everything the
// body did before the parent's subsequent accesses — but only a receive
// that the live-spawn flow actually passes kills the spawn, so the
// variant that reads before receiving is flagged.
package fixture

// ordered is clean: the parent receives the result value itself, which
// both transfers the data and joins the producer.
func ordered(buf []int) int {
	out := make(chan int)
	go func() {
		s := 0
		for i := range buf {
			buf[i] = i
			s += i
		}
		out <- s
	}()
	total := <-out
	total += buf[0]
	return total
}

// unordered reads buf[0] before the receive: the producer may still be
// writing it.
func unordered(buf []int) int {
	out := make(chan int)
	go func() {
		s := 0
		for i := range buf {
			buf[i] = i
			s += i
		}
		out <- s
	}()
	early := buf[0]
	return early + <-out
}
