// Package fixture stays clean under racecheck: every concurrent access
// pair shares a lock or is ordered by a join before the conflict.
package fixture

import "sync"

// mutexBothSides holds the same mutex around both writes: the locksets
// intersect, so the pair is excluded.
func mutexBothSides() int {
	var mu sync.Mutex
	x := 0
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		mu.Lock()
		x = 1
		mu.Unlock()
	}()
	mu.Lock()
	x = 2
	mu.Unlock()
	wg.Wait()
	return x
}

// joinBeforeRead reads only after wg.Wait has joined the writer: the
// spawn is dead at the read.
func joinBeforeRead(buf []float64) float64 {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := range buf {
			buf[i] = float64(i)
		}
	}()
	wg.Wait()
	return buf[0]
}

// signalBeforeRead orders the read after the goroutine's close(done):
// receive-after-close is a happens-before edge.
func signalBeforeRead() int {
	n := 0
	done := make(chan struct{})
	go func() {
		n = 41
		close(done)
	}()
	<-done
	n++
	return n
}

// privateState keeps every written variable thread-private: locals
// declared inside the goroutine, and a value parameter copied at spawn.
func privateState(parts int, wg *sync.WaitGroup) {
	for w := 0; w < parts; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			acc := 0
			for i := 0; i < w; i++ {
				acc += i
			}
			_ = acc
		}(w)
	}
}

// deferUnlockGuard holds mu to function exit via defer in both the
// goroutine and the parent helper path: defer-scoped unlocks keep the
// lock in the set.
func deferUnlockGuard(shared *int, wg *sync.WaitGroup, mu *sync.Mutex) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		mu.Lock()
		defer mu.Unlock()
		*shared++
	}()
	mu.Lock()
	defer mu.Unlock()
	*shared = 7
}
