// Package fixture triggers the racecheck checker: shared-state accesses
// reachable from concurrently-live goroutines with disjoint locksets.
package fixture

import "sync"

// counterRace increments a captured counter from the parent while the
// goroutine that also increments it is still live — the completion
// signal is received only after the parent's write.
func counterRace() int {
	n := 0
	done := make(chan struct{})
	go func() {
		n++
		done <- struct{}{}
	}()
	n++
	<-done
	return n
}

// mutexOneSide guards the goroutine's write with mu but not the
// parent's: the locksets {mu} and {} are disjoint, so mu excludes
// nothing.
func mutexOneSide() int {
	var mu sync.Mutex
	x := 0
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		mu.Lock()
		x = 1
		mu.Unlock()
	}()
	x = 2
	wg.Wait()
	return x
}

// mapSiblings writes the same map from two unjoined sibling goroutines:
// the runtime forbids concurrent map writes no matter which keys each
// side touches.
func mapSiblings(m map[int]int, wg *sync.WaitGroup) {
	wg.Add(2)
	go func() {
		defer wg.Done()
		m[0] = 1
	}()
	go func() {
		defer wg.Done()
		m[1] = 2
	}()
}

// readDuringWrite reads an element the spawned sweep may be writing:
// the join (<-done) comes only after the read.
func readDuringWrite(buf []float64) float64 {
	done := make(chan struct{})
	go func() {
		for i := range buf {
			buf[i] = float64(i)
		}
		close(done)
	}()
	sum := buf[0]
	<-done
	return sum
}

// loopedSpawn spawns one unsynchronized writer per iteration: every
// instance writes the same captured total, racing with its siblings.
func loopedSpawn(parts [][]float64, wg *sync.WaitGroup) {
	total := 0.0
	for _, part := range parts {
		wg.Add(1)
		go func(p []float64) {
			defer wg.Done()
			for _, v := range p {
				total += v
			}
		}(part)
	}
}
