// Package fixture is the repo's worker-pool shape: workers drain a
// shared channel and store into worker-owned result slots, the parent
// dispatches, closes, and joins before reading. racecheck must stay
// silent: channel operations are not memory accesses, and results[i]
// writes are index-disjoint (each i is dispatched once).
package fixture

import "sync"

func process(i int) int { return i * i }

func pool(n, workers int) []int {
	results := make([]int, n)
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				results[i] = process(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	return results
}
