// Package fixture pins the sanctioned pool layout: resident workers
// spawned once, each publishing its per-round result into a
// cache-line-padded slot (the kernel.SweepPool deltas layout).
package fixture

import "sync"

// runPool spawns resident workers that serve rounds from private
// channels and write their partial results at a 64-byte stride.
func runPool(cur []float64, parts, rounds int) float64 {
	deltas := make([]float64, parts*8)
	jobs := make([]chan []float64, parts)
	var wg sync.WaitGroup
	for w := 0; w < parts; w++ {
		ch := make(chan []float64, 1)
		jobs[w] = ch
		go func(w int, ch chan []float64) {
			for vec := range ch {
				d := 0.0
				for v := w; v < len(vec); v += parts {
					d += vec[v]
				}
				deltas[w*8] = d
				wg.Done()
			}
		}(w, ch)
	}
	total := 0.0
	for r := 0; r < rounds; r++ {
		wg.Add(parts)
		for _, ch := range jobs {
			ch <- cur
		}
		wg.Wait()
		for w := 0; w < parts; w++ {
			total += deltas[w*8]
		}
	}
	for _, ch := range jobs {
		close(ch)
	}
	return total
}
