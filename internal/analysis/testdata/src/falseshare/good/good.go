// Package fixture stays clean under the falseshare checker: padded
// strides, disjoint-range writes, sequential siblings, worker-local
// buffers.
package fixture

import "sync"

// paddedSlots gives each worker a full cache line: 8 float64 = 64 B.
func paddedSlots(cur []float64, parts int) float64 {
	deltas := make([]float64, parts*8)
	var wg sync.WaitGroup
	for w := 0; w < parts; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			d := 0.0
			for v := w; v < len(cur); v += parts {
				d += cur[v]
			}
			deltas[w*8] = d
		}(w)
	}
	wg.Wait()
	total := 0.0
	for w := 0; w < parts; w++ {
		total += deltas[w*8]
	}
	return total
}

// rangeWrites is the disjoint-range shape the sweep kernels use: each
// worker fills next[lo:hi) element by element — many consecutive lines
// per worker, only the boundaries could ever be shared.
func rangeWrites(next, cur []float64, parts int) {
	var wg sync.WaitGroup
	chunk := (len(next) + parts - 1) / parts
	for w := 0; w < parts; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(next) {
			hi = len(next)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for v := lo; v < hi; v++ {
				next[v] = 0.85 * cur[v]
			}
		}(lo, hi)
	}
	wg.Wait()
}

// sequentialSiblings joins each goroutine in the iteration that
// spawned it: no two are ever concurrently live, nothing can
// false-share.
func sequentialSiblings(slots []float64, parts int) {
	var wg sync.WaitGroup
	for w := 0; w < parts; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			slots[w] = float64(w)
		}(w)
		wg.Wait()
	}
}

// localBuffer accumulates into a worker-owned slice: nothing shared.
func localBuffer(cur []float64, parts int) {
	var wg sync.WaitGroup
	for w := 0; w < parts; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			local := make([]float64, 4)
			local[0] = float64(w)
			_ = local
		}(w)
	}
	wg.Wait()
}
