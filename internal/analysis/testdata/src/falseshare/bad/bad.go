// Package fixture triggers the falseshare checker: sibling goroutines
// writing adjacent per-worker slots of one backing array.
package fixture

import "sync"

// adjacentSlots is the classic shape: worker w owns partDeltas[w], one
// float64 per worker — eight workers in one cache line, every store
// invalidating the siblings'.
func adjacentSlots(cur []float64, parts int) float64 {
	partDeltas := make([]float64, parts)
	var wg sync.WaitGroup
	for w := 0; w < parts; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			d := 0.0
			for v := w; v < len(cur); v += parts {
				d += cur[v]
			}
			partDeltas[w] = d
		}(w)
	}
	wg.Wait()
	total := 0.0
	for _, d := range partDeltas {
		total += d
	}
	return total
}

// capturedLoopVar writes through the captured per-iteration loop
// variable (Go 1.22 semantics) instead of a parameter; int32 slots
// pack sixteen workers per line.
func capturedLoopVar(done []int32, parts int) {
	var wg sync.WaitGroup
	for w := 0; w < parts; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			done[w] = 1
		}()
	}
	wg.Wait()
}

// underPadded strides by two floats — 16 bytes, still four workers to
// a cache line.
func underPadded(deltas []float64, parts int) {
	var wg sync.WaitGroup
	for w := 0; w < parts; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			deltas[w*2] = float64(w)
		}(w)
	}
	wg.Wait()
}
