// Package fixture stays clean under lockorder: every path acquires the
// two mutexes in the same global order, and helpers that need a lock
// are called before it is taken.
package fixture

import "sync"

var (
	muA sync.Mutex
	muB sync.Mutex
)

// transfer and refund both acquire A before B: the order graph has the
// single edge A→B and no cycle.
func transfer() {
	muA.Lock()
	defer muA.Unlock()
	muB.Lock()
	defer muB.Unlock()
}

func refund() {
	muA.Lock()
	muB.Lock()
	muB.Unlock()
	muA.Unlock()
}

type account struct {
	mu      sync.Mutex
	balance int
}

// audit reads under its own lock and calls the lock-free helper:
// no self-edge.
func (a *account) audit() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.readLocked()
}

// readLocked documents its precondition instead of re-locking.
func (a *account) readLocked() int {
	return a.balance
}
