// Package fixture triggers the lockorder checker: an ABBA cycle between
// two mutexes, and a double-lock through a helper.
package fixture

import "sync"

var (
	muA sync.Mutex
	muB sync.Mutex
)

// transferAB acquires A then B.
func transferAB() {
	muA.Lock()
	defer muA.Unlock()
	muB.Lock()
	defer muB.Unlock()
}

// transferBA acquires B then A — the opposite order: with transferAB
// running concurrently this deadlocks.
func transferBA() {
	muB.Lock()
	defer muB.Unlock()
	muA.Lock()
	defer muA.Unlock()
}

type account struct {
	mu      sync.Mutex
	balance int
}

// audit locks the account and then calls a helper that locks it again:
// sync.Mutex is not reentrant, so this self-cycle deadlocks.
func (a *account) audit() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.read()
}

func (a *account) read() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.balance
}
