// Package fixture triggers the panicfree checker: bare panics in
// library functions.
package fixture

import "fmt"

// Build panics on invalid input instead of returning an error.
func Build(n int) []int {
	if n < 0 {
		panic(fmt.Sprintf("fixture: negative size %d", n))
	}
	return make([]int, n)
}

// lengthCheck panics deep inside a helper.
func lengthCheck(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("fixture: length mismatch")
	}
	return 0
}
