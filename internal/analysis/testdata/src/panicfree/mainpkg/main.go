// Commands are exempt from panicfree: a CLI may crash on startup
// misconfiguration.
package main

import "os"

func main() {
	if len(os.Args) > 99 {
		panic("too many arguments")
	}
}
