// Package fixture is clean under the panicfree checker: errors are
// returned, Must* wrappers are the sanctioned panic location, and a
// sentinel documents the one intentional exception.
package fixture

import (
	"errors"
	"fmt"
)

// Build returns an error on invalid input.
func Build(n int) ([]int, error) {
	if n < 0 {
		return nil, fmt.Errorf("fixture: negative size %d", n)
	}
	return make([]int, n), nil
}

// MustBuild follows the Must* convention for literal inputs in tests
// and examples.
func MustBuild(n int) []int {
	v, err := Build(n)
	if err != nil {
		panic(err)
	}
	return v
}

// exhaustive documents an unreachable default.
func exhaustive(kind int) (string, error) {
	switch kind {
	case 0:
		return "power", nil
	case 1:
		return "gauss-seidel", nil
	default:
		//arlint:allow panicfree kinds are validated at the API boundary
		panic(errors.New("fixture: unreachable"))
	}
}
