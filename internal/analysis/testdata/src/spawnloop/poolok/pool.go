// Package fixture pins the sanctioned resolution of a spawnloop
// finding: a persistent round-barriered pool (the kernel.SweepPool
// shape) — workers spawned once in the constructor, a convergence
// loop calling the round per iteration, one Close at the end.
package fixture

import "sync"

type job struct {
	next, cur []float64
}

type pool struct {
	parts int
	jobs  []chan job
	wg    sync.WaitGroup
}

// newPool spawns the resident workers: SpawnsGoroutine without
// WaitsOnWG — a constructor, not a churny unit.
func newPool(parts int) *pool {
	p := &pool{parts: parts, jobs: make([]chan job, parts)}
	for w := 0; w < parts; w++ {
		ch := make(chan job, 1)
		p.jobs[w] = ch
		go p.worker(w, ch)
	}
	return p
}

func (p *pool) worker(w int, jobs <-chan job) {
	for j := range jobs {
		for v := w; v < len(j.next); v += p.parts {
			j.next[v] = 0.85 * j.cur[v]
		}
		p.wg.Done()
	}
}

// round broadcasts one sweep and joins the barrier: WaitsOnWG without
// SpawnsGoroutine, so calling it per iteration is clean.
func (p *pool) round(next, cur []float64) {
	p.wg.Add(p.parts)
	for _, ch := range p.jobs {
		ch <- job{next: next, cur: cur}
	}
	p.wg.Wait()
}

func (p *pool) close() {
	for _, ch := range p.jobs {
		close(ch)
	}
}

// iterate is the engine: the pool outlives the convergence loop, each
// iteration pays only the round barrier.
func iterate(next, cur []float64, parts int, tol float64) {
	p := newPool(parts)
	defer p.close()
	delta := tol + 1
	for delta > tol {
		p.round(next, cur)
		delta *= 0.5
		next, cur = cur, next
	}
}
