// Package fixture stays clean under the spawnloop checker: goroutines
// are spawned once and amortized, or the repeated work is a
// self-contained computation.
package fixture

import "sync"

// spawnOnceJoinOnce is the fan-out shape: the spawn loop joins nothing
// per iteration, the single Wait after it joins everything once.
func spawnOnceJoinOnce(out []float64, parts int) {
	var wg sync.WaitGroup
	for w := 0; w < parts; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for v := w; v < len(out); v += parts {
				out[v] = float64(v)
			}
		}(w)
	}
	wg.Wait()
}

// fullComputation spawns its workers before its convergence loop and
// drives them with per-round job sends — the spawn is amortized over
// the whole run, so the summary carries no SpawnChurn.
func fullComputation(next, cur []float64, parts, maxIter int) float64 {
	var wg sync.WaitGroup
	jobs := make([]chan int, parts)
	for w := 0; w < parts; w++ {
		ch := make(chan int, 1)
		jobs[w] = ch
		go func(w int, ch chan int) {
			for range ch {
				for v := w; v < len(next); v += parts {
					next[v] = 0.85 * cur[v]
				}
				wg.Done()
			}
		}(w, ch)
	}
	total := 0.0
	for iter := 0; iter < maxIter; iter++ {
		wg.Add(parts)
		for _, ch := range jobs {
			ch <- iter
		}
		wg.Wait()
		total += next[0]
		next, cur = cur, next
	}
	for _, ch := range jobs {
		close(ch)
	}
	return total
}

// repeatComputation is the benchmark shape: repeating a self-contained
// parallel computation is not per-iteration churn — the callee
// amortizes its own spawns internally.
func repeatComputation(next, cur []float64, parts, reps int) float64 {
	total := 0.0
	for r := 0; r < reps; r++ {
		total += fullComputation(next, cur, parts, 50)
	}
	return total
}
