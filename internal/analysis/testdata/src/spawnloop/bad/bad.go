// Package fixture triggers the spawnloop checker: goroutine spawn +
// WaitGroup join churn inside high-trip loops — the pre-pool shape of
// the parallel sweep this repository used to have.
package fixture

import "sync"

// iterateDirect pays one goroutine creation per worker per iteration
// of the convergence loop: the spawn loop and the Wait both live in
// the iteration body.
func iterateDirect(next, cur []float64, parts int, tol float64) {
	delta := tol + 1
	for delta > tol {
		var wg sync.WaitGroup
		chunk := (len(next) + parts - 1) / parts
		for w := 0; w < parts; w++ {
			lo := w * chunk
			hi := lo + chunk
			if hi > len(next) {
				hi = len(next)
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				for v := lo; v < hi; v++ {
					next[v] = 0.85 * cur[v]
				}
			}(lo, hi)
		}
		wg.Wait()
		delta *= 0.5
		next, cur = cur, next
	}
}

// parallelSweep is the churny unit hiding the same pattern behind a
// call: one spawn+join per invocation, no rounds structure of its own,
// so its summary carries SpawnChurn.
func parallelSweep(next, cur []float64, parts int) {
	var wg sync.WaitGroup
	chunk := (len(next) + parts - 1) / parts
	for w := 0; w < parts; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(next) {
			hi = len(next)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for v := lo; v < hi; v++ {
				next[v] = 0.85 * cur[v]
			}
		}(lo, hi)
	}
	wg.Wait()
}

// iterateViaHelper repeats the churn through the helper's summary: the
// loop body neither spawns nor waits syntactically, but every call to
// parallelSweep does both.
func iterateViaHelper(next, cur []float64, parts, maxIter int) {
	for iter := 0; iter < maxIter; iter++ {
		parallelSweep(next, cur, parts)
		next, cur = cur, next
	}
}
