// Package fixture triggers the gocapture checker: goroutines writing
// captured variables without synchronization or worker-indexed slots.
package fixture

import "sync"

type tally struct {
	total float64
}

// sumRace accumulates into a captured scalar from every worker.
func sumRace(parts []float64) float64 {
	var wg sync.WaitGroup
	total := 0.0
	for _, p := range parts {
		wg.Add(1)
		go func(p float64) {
			defer wg.Done()
			total += p
		}(p)
	}
	wg.Wait()
	return total
}

// fieldRace writes a field of a captured struct.
func fieldRace(parts []float64) float64 {
	var wg sync.WaitGroup
	var t tally
	for _, p := range parts {
		wg.Add(1)
		go func(p float64) {
			defer wg.Done()
			t.total += p
		}(p)
	}
	wg.Wait()
	return t.total
}

// counterRace increments a captured counter.
func counterRace(n int) int {
	var wg sync.WaitGroup
	done := 0
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			done++
		}()
	}
	wg.Wait()
	return done
}
