// Package fixture is clean under the gocapture checker: worker-indexed
// slots, mutex-guarded writes, closure-local state, and a documented
// sentinel.
package fixture

import "sync"

// slots is the worker-indexed slot pattern from parallel.go: each
// goroutine writes only elements of its own range.
func slots(parts []float64, workers int) float64 {
	var wg sync.WaitGroup
	acc := make([]float64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(parts); i += workers {
				acc[w] += parts[i]
			}
		}(w)
	}
	wg.Wait()
	total := 0.0
	for _, a := range acc {
		total += a
	}
	return total
}

// locked guards the shared accumulator with a mutex.
func locked(parts []float64) float64 {
	var wg sync.WaitGroup
	var mu sync.Mutex
	total := 0.0
	for _, p := range parts {
		wg.Add(1)
		go func(p float64) {
			defer wg.Done()
			mu.Lock()
			total += p
			mu.Unlock()
		}(p)
	}
	wg.Wait()
	return total
}

// local writes only variables declared inside the closure and reports
// through a channel.
func local(parts []float64) float64 {
	out := make(chan float64, len(parts))
	for _, p := range parts {
		go func(p float64) {
			x := p * p
			out <- x
		}(p)
	}
	total := 0.0
	for range parts {
		total += <-out
	}
	return total
}

// sequenced is started after the only writer finished; the ordering is
// established outside what the checker can see, so it is documented.
func sequenced() int {
	ready := 0
	ch := make(chan struct{})
	go func() {
		//arlint:allow gocapture happens-before established via ch
		ready = 1
		close(ch)
	}()
	<-ch
	return ready
}
