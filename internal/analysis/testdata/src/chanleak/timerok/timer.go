// Package fixture stays clean under the timerleak sub-check: the timer
// is hoisted out of the loop and reused, and a blocking time.After
// outside a select waits its timer out.
package fixture

import "time"

func poll(work <-chan int, quit <-chan struct{}) int {
	total := 0
	timeout := time.NewTimer(time.Second)
	defer timeout.Stop()
	for {
		select {
		case w := <-work:
			total += w
			if !timeout.Stop() {
				<-timeout.C
			}
			timeout.Reset(time.Second)
		case <-timeout.C:
			return total
		case <-quit:
			return total
		}
	}
}

func throttle(n int) {
	for i := 0; i < n; i++ {
		<-time.After(time.Millisecond) // blocking receive: timer fires and is collected
	}
}

func oneShot(quit <-chan struct{}) bool {
	select { // not in a loop: a single timer is fine
	case <-time.After(time.Second):
		return false
	case <-quit:
		return true
	}
}
