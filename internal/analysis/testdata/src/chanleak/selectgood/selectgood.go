package fixture

import "context"

// A default-guarded send never parks the goroutine: when no receiver is
// ready the default fires and the goroutine moves on. The parent owes
// nothing.
func defaultGuarded() {
	ch := make(chan int)
	go func() {
		select {
		case ch <- 1:
		default:
		}
	}()
}

// A send raced against cancellation is released either way: by a
// receiver, or by the context being cancelled.
func cancelGuarded(ctx context.Context) {
	ch := make(chan int)
	go func() {
		select {
		case ch <- 1:
		case <-ctx.Done():
		}
	}()
}

// The multi-case drain loop of a serving worker: receives until the
// channel closes or the context is cancelled — through a Done channel
// bound to a variable. The parent's send and close are ordinary
// discharges; the goroutine's guarded receive creates no obligation.
func drainLoop(ctx context.Context) {
	ch := make(chan int)
	done := ctx.Done()
	go func() {
		for {
			select {
			case v, ok := <-ch:
				if !ok {
					return
				}
				_ = v
			case <-done:
				return
			}
		}
	}()
	ch <- 1
	close(ch)
}
