// Package fixture passes the chanleak checker: every spawned blocking
// operation is matched on all paths of the declaring function.
package fixture

func use(int)      {}
func compute() int { return 1 }

// workerPool closes the job channel on its only exit, releasing the
// ranging consumer.
func workerPool(jobs []int) {
	work := make(chan int)
	go func() {
		for v := range work {
			use(v)
		}
	}()
	for _, j := range jobs {
		work <- j
	}
	close(work)
}

// fanIn gives the result channel capacity for every sender, so each
// send completes without a partner.
func fanIn(n int) int {
	res := make(chan int, 4)
	for i := 0; i < 4; i++ {
		go func() {
			res <- compute()
		}()
	}
	total := 0
	for i := 0; i < 4; i++ {
		total += <-res
	}
	_ = n
	return total
}

// drain consumes the channel until it is closed; its summary marks the
// parameter as drained.
func drain(work chan int) {
	for v := range work {
		use(v)
	}
}

// deferClose spawns the summarized drainer and defers the close: the
// obligation is met on every exit, early returns included.
func deferClose(jobs []int) {
	work := make(chan int)
	defer close(work)
	go drain(work)
	for _, j := range jobs {
		if j < 0 {
			return
		}
		work <- j
	}
}

// pairedWorkers splits production and consumption across two sibling
// goroutines: the consumer's range drains the producer's send and the
// producer's close releases the consumer's range, so the declaring
// function owes nothing at its exit.
func pairedWorkers() {
	ch := make(chan int)
	go func() {
		for v := range ch {
			use(v)
		}
	}()
	go func() {
		ch <- 1
		close(ch)
	}()
}

// pairedReversed spawns the producer first: the consumer spawned later
// must discharge the producer's pending send obligation, and the
// producer's close (already spawned) must cover the consumer's range.
func pairedReversed() {
	ch := make(chan int)
	go func() {
		ch <- 1
		close(ch)
	}()
	go func() {
		for v := range ch {
			use(v)
		}
	}()
}

// newSource returns the channel: the matching operations live with the
// caller, so the checker stays quiet (escape).
func newSource() <-chan int {
	ch := make(chan int)
	go func() {
		for i := 0; i < 4; i++ {
			ch <- i
		}
		close(ch)
	}()
	return ch
}
