// Package fixture triggers the chanleak timerleak sub-check: a
// time.After (or time.Tick) case inside a loop's select allocates a
// timer per iteration that outlives the iteration.
package fixture

import "time"

func poll(work <-chan int, quit <-chan struct{}) int {
	total := 0
	for {
		select {
		case w := <-work:
			total += w
		case <-time.After(time.Second):
			return total
		case <-quit:
			return total
		}
	}
}

func drain(events <-chan string) {
	for range events {
		select {
		case <-time.Tick(time.Minute):
			return
		default:
		}
	}
}
