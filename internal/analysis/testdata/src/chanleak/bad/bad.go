// Package fixture triggers the chanleak checker: goroutines left
// blocked forever on a channel some path out of the declaring function
// never closes or drains.
package fixture

func use(int)      {}
func compute() int { return 1 }

// produce spawns a consumer ranging over ch, then returns early on one
// path without closing it: the consumer parks on the receive forever.
func produce(n int) {
	ch := make(chan int)
	go func() {
		for v := range ch {
			use(v)
		}
	}()
	for i := 0; i < n; i++ {
		if i == 3 {
			return
		}
		ch <- i
	}
	close(ch)
}

// request spawns a sender on an unbuffered channel and skips the
// receive on the fast path: the goroutine blocks on the send forever.
func request(fast bool) int {
	res := make(chan int)
	go func() {
		res <- compute()
	}()
	if fast {
		return 0
	}
	return <-res
}

// twoConsumers spawns a ranging consumer and then a single-receive
// consumer; nothing ever sends or closes, so both park forever. The
// second spawn must not mask the first one's close obligation — the
// obligations are distinct and both must be reported.
func twoConsumers() {
	ch := make(chan int)
	go func() {
		for v := range ch {
			use(v)
		}
	}()
	go func() {
		use(<-ch)
	}()
}
