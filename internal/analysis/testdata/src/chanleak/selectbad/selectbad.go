package fixture

// A select with neither a default clause nor a cancellation case is
// still a blocking communication: this single-case select is exactly a
// blocking send, and nobody ever receives.
func blockingSelect() {
	ch := make(chan int)
	go func() {
		select {
		case ch <- 1:
		}
	}()
}
