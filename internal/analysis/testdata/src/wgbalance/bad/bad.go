// Package fixture triggers the wgbalance checker: wg.Add calls whose
// matching Done is missing or skippable on some path.
package fixture

import "sync"

func work() {}

// skipped spawns a goroutine that returns before Done on one path:
// Wait blocks forever whenever n > 0.
func skipped(n int) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		if n > 0 {
			return
		}
		wg.Done()
	}()
	wg.Wait()
}

// noDone has an Add with no Done anywhere: the goroutine never
// references the WaitGroup.
func noDone() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		work()
	}()
	wg.Wait()
}

// leakyWorker Dones only on its happy path.
func leakyWorker(wg *sync.WaitGroup, n int) {
	if n > 0 {
		return
	}
	work()
	wg.Done()
}

// viaHelper hides the skippable Done in a helper: the summary of
// leakyWorker proves nothing, so the spawn is flagged.
func viaHelper(n int) {
	var wg sync.WaitGroup
	wg.Add(1)
	go leakyWorker(&wg, n)
	wg.Wait()
}

// condDefer registers the Done defer on one branch only: a defer
// counts just for the paths that pass through it, so the fall-through
// path (j >= 0) never Dones and Wait deadlocks.
func condDefer(j int) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		if j < 0 {
			defer wg.Done()
			return
		}
		work()
	}()
	wg.Wait()
}

// condDeferWorker hides the same defect behind a summary: the
// conditional defer must not let the summary claim Done on all paths.
func condDeferWorker(wg *sync.WaitGroup, j int) {
	if j < 0 {
		defer wg.Done()
		return
	}
	work()
}

// viaCondDefer spawns the conditionally-deferring worker: whenever
// j >= 0 the Done never runs.
func viaCondDefer(j int) {
	var wg sync.WaitGroup
	wg.Add(1)
	go condDeferWorker(&wg, j)
	wg.Wait()
}

// mentionsOnly references the WaitGroup but contains no Done at all:
// the one shape where the mechanical `defer wg.Done()` insertion is
// safe, so this spawn carries the suggested fix.
func mentionsOnly() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		_ = wg
		work()
	}()
	wg.Wait()
}
