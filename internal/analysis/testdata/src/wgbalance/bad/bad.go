// Package fixture triggers the wgbalance checker: wg.Add calls whose
// matching Done is missing or skippable on some path.
package fixture

import "sync"

func work() {}

// skipped spawns a goroutine that returns before Done on one path:
// Wait blocks forever whenever n > 0.
func skipped(n int) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		if n > 0 {
			return
		}
		wg.Done()
	}()
	wg.Wait()
}

// noDone has an Add with no Done anywhere: the goroutine never
// references the WaitGroup.
func noDone() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		work()
	}()
	wg.Wait()
}

// leakyWorker Dones only on its happy path.
func leakyWorker(wg *sync.WaitGroup, n int) {
	if n > 0 {
		return
	}
	work()
	wg.Done()
}

// viaHelper hides the skippable Done in a helper: the summary of
// leakyWorker proves nothing, so the spawn is flagged.
func viaHelper(n int) {
	var wg sync.WaitGroup
	wg.Add(1)
	go leakyWorker(&wg, n)
	wg.Wait()
}
