// Package fixture stays clean under the wgbalance worker-pool
// lifecycle check: the spawn and drain loops share one bound, and
// per-job senders (send inside the worker's inner loop) are exempt
// because their completion count is not the spawn count.
package fixture

// matchedBounds spawns and drains under the same bound expression.
func matchedBounds(workers int) int {
	results := make(chan int)
	for w := 0; w < workers; w++ {
		go func() {
			results <- 1
		}()
	}
	total := 0
	for i := 0; i < workers; i++ {
		total += <-results
	}
	return total
}

// perJobSenders is the rankMany shape: each worker sends once per job
// drained from a shared channel, so the drain loop is rightly bound by
// the job count, not the worker count.
func perJobSenders(jobs []int, workers int) int {
	work := make(chan int)
	results := make(chan int)
	for w := 0; w < workers; w++ {
		go func() {
			for j := range work {
				results <- j * 2
			}
		}()
	}
	go func() {
		for _, j := range jobs {
			work <- j
		}
		close(work)
	}()
	total := 0
	for i := 0; i < len(jobs); i++ {
		total += <-results
	}
	return total
}
