package fixture

import (
	"context"
	"sync"
)

// The sanctioned serving shape: defer guarantees Done no matter which
// select case fires.
func deferredDone(ctx context.Context, out chan<- int) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		select {
		case out <- 1:
		case <-ctx.Done():
		}
	}()
	wg.Wait()
}
