package fixture

import (
	"context"
	"sync"
)

// Done only on the send branch: the CFG decomposes the select into
// per-case paths, and the cancellation path returns without Done —
// Wait blocks forever on a cancelled request.
func missingDoneOnCancel(ctx context.Context, out chan<- int) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		select {
		case out <- 1:
			wg.Done()
		case <-ctx.Done():
			return
		}
	}()
	wg.Wait()
}
