// Package fixture passes the wgbalance checker: every Add is matched
// by a Done guaranteed on all paths — by defer, by a must-path call,
// or by a callee whose summary proves the Done.
package fixture

import "sync"

func work() {}

// deferred is the sanctioned form: defer covers every exit.
func deferred(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work()
		}()
	}
	wg.Wait()
}

// allPaths calls Done on every branch; the CFG must-analysis proves it
// without a defer.
func allPaths(ok bool) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		if ok {
			work()
			wg.Done()
			return
		}
		wg.Done()
	}()
	wg.Wait()
}

// worker guarantees Done on all paths, so spawning it is safe.
func worker(wg *sync.WaitGroup) {
	defer wg.Done()
	work()
}

// viaHelper relies on worker's summary: the Done lives in the callee.
func viaHelper(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go worker(&wg)
	}
	wg.Wait()
}
