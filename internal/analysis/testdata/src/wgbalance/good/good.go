// Package fixture passes the wgbalance checker: every Add is matched
// by a Done guaranteed on all paths — by defer, by a must-path call,
// or by a callee whose summary proves the Done.
package fixture

import "sync"

func work() {}

// deferred is the sanctioned form: defer covers every exit.
func deferred(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work()
		}()
	}
	wg.Wait()
}

// allPaths calls Done on every branch; the CFG must-analysis proves it
// without a defer.
func allPaths(ok bool) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		if ok {
			work()
			wg.Done()
			return
		}
		wg.Done()
	}()
	wg.Wait()
}

// worker guarantees Done on all paths, so spawning it is safe.
func worker(wg *sync.WaitGroup) {
	defer wg.Done()
	work()
}

// viaHelper relies on worker's summary: the Done lives in the callee.
func viaHelper(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go worker(&wg)
	}
	wg.Wait()
}

// lateDefer registers the Done defer after some setup, but
// unconditionally: every path passes through the registration, so the
// guarantee holds even though the defer is not the first statement.
func lateDefer() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		work()
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

// variadicWorker guarantees Done; the extra variadic arguments at the
// call site fold onto the variadic slot and must not disturb the
// WaitGroup parameter's guarantee.
func variadicWorker(wg *sync.WaitGroup, ids ...int) {
	defer wg.Done()
	for range ids {
		work()
	}
}

// viaVariadic spawns the variadic worker with spread arguments.
func viaVariadic() {
	var wg sync.WaitGroup
	wg.Add(1)
	go variadicWorker(&wg, 1, 2, 3)
	wg.Wait()
}
