// Package fixture triggers the wgbalance worker-pool lifecycle check:
// the spawn loop and the drain loop of one pool run under different
// bounds, so the completion counts diverge.
package fixture

import "sync"

// mismatchedDrain spawns `workers` goroutines, each sending exactly one
// completion, but drains `n` of them: n > workers blocks the drain
// forever, n < workers leaks goroutines stuck on their send.
func mismatchedDrain(n, workers int) int {
	results := make(chan int)
	for w := 0; w < workers; w++ {
		go func() {
			results <- 1
		}()
	}
	total := 0
	for i := 0; i < n; i++ {
		total += <-results
	}
	return total
}

func submit(int) {}

// mismatchedDone Add(1)s once per submitted task but Done()s once per
// received ack under a different bound: the counter never reaches zero
// (Wait blocks) or goes negative (panic).
func mismatchedDone(n, tasks int, acks <-chan struct{}) {
	var wg sync.WaitGroup
	for i := 0; i < tasks; i++ {
		wg.Add(1)
		submit(i)
	}
	for i := 0; i < n; i++ {
		<-acks
		wg.Done()
	}
	wg.Wait()
}
