// Package kernel mirrors the repository's pooled flat-sweep layer (and
// by name is one of the packages the checker covers): the scratch
// getter allocates only on pool misses, so calling it inside a
// power-iteration loop is amortized-free and must not be flagged.
package kernel

import "sync"

var vecPool sync.Pool // *[]float64

// getVec returns a scratch vector of length n; the make runs only when
// the pool has no buffer large enough, so the function's summary must
// NOT say it allocates per call.
func getVec(n int) []float64 {
	if p, ok := vecPool.Get().(*[]float64); ok && cap(*p) >= n {
		return (*p)[:n]
	}
	return make([]float64, n)
}

// putVec recycles a buffer obtained from getVec.
func putVec(v []float64) {
	vecPool.Put(&v)
}

// Sweep draws its per-round scratch from the pool inside the
// convergence loop — the pattern the pooled engines use — and stays
// finding-free.
func Sweep(scores []float64, maxIterations int) {
	for iter := 1; iter <= maxIterations; iter++ {
		buf := getVec(len(scores))
		copy(buf, scores)
		scores[0] = buf[0]
		putVec(buf)
	}
}
