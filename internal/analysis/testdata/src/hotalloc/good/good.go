// Package pagerank stays clean under the hotalloc checker: buffers are
// sized once before the power-iteration loop.
package pagerank

// Compute preallocates with explicit capacity; appends stay in place.
func Compute(maxIterations int) []float64 {
	scores := make([]float64, 8)
	deltas := make([]float64, 0, maxIterations)
	for iter := 1; iter <= maxIterations; iter++ {
		deltas = append(deltas, float64(iter))
	}
	_ = deltas
	return scores
}

// Setup loops without the iteration convention may allocate freely.
func Setup(blocks [][]int) [][]float64 {
	out := make([][]float64, len(blocks))
	for i, b := range blocks {
		out[i] = make([]float64, len(b))
	}
	return out
}

// PerIteration intentionally reallocates; the sentinel records why.
func PerIteration(maxIterations int) {
	for iter := 1; iter <= maxIterations; iter++ {
		//arlint:allow hotalloc fixture: a fresh buffer is needed per iteration
		buf := make([]float64, 4)
		_ = buf
	}
}
