// Package pagerank (by name one of the iteration engines the hotalloc
// checker covers) exercises the interprocedural layer: the allocation
// hides in a helper whose summary says it allocates, and the call
// inside the power-iteration loop is flagged like an inline make.
package pagerank

// scratch allocates on every call.
func scratch(n int) []float64 {
	return make([]float64, n)
}

// wrapped allocates through scratch; the summary propagates.
func wrapped(n int) []float64 {
	return scratch(n)
}

// sum is allocation-free: calling it in the loop is fine.
func sum(xs []float64) float64 {
	total := 0.0
	for _, x := range xs {
		total += x
	}
	return total
}

// Compute calls the allocating helpers every iteration.
func Compute(maxIterations int) []float64 {
	scores := make([]float64, 8)
	for iter := 1; iter <= maxIterations; iter++ {
		buf := scratch(len(scores))
		copy(buf, scores)
		deep := wrapped(len(scores))
		copy(deep, scores)
		scores[0] = sum(scores)
	}
	return scores
}
