// Package pagerank (by name one of the iteration engines the hotalloc
// checker covers) triggers the checker: allocations and unbounded
// append growth inside the power-iteration loop.
package pagerank

type result struct {
	deltas []float64
}

// Compute allocates a fresh buffer and grows a slice every iteration.
func Compute(maxIterations int) []float64 {
	res := &result{}
	scores := make([]float64, 8)
	for iter := 1; iter <= maxIterations; iter++ {
		buf := make([]float64, len(scores))
		copy(buf, scores)
		res.deltas = append(res.deltas, buf[0])
	}
	return scores
}
