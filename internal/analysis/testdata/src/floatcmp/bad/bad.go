// Package fixture triggers the floatcmp checker: equality between
// float-typed operands that are not the exact-zero sentinel.
package fixture

// sameScore compares two computed scores exactly — the classic trap.
func sameScore(a, b float64) bool {
	return a == b
}

// tieBreak uses != for tie detection inside a comparator.
func tieBreak(s []float64, i, j int) bool {
	if s[i] != s[j] {
		return s[i] > s[j]
	}
	return i < j
}

// mixed flags even when only one operand is a float.
func mixed(x float64, n int) bool {
	return x == float64(n)
}

// near32 also applies to float32.
func near32(a, b float32) bool {
	return a != b
}
