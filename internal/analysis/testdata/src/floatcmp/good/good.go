// Package fixture is clean under the floatcmp checker: exact-zero
// sentinel checks, ordered comparisons with an index tie-break, integer
// equality, and an //arlint:allow sentinel.
package fixture

// unset uses the sanctioned exact-zero "take the default" sentinel.
func unset(tol float64) bool {
	return tol == 0
}

// sparse skips exactly-zero entries (assigned, never computed).
func sparse(cur []float64, u int) bool {
	return 0 == cur[u]
}

// comparator orders with >/< and an index tie-break instead of !=.
func comparator(s []float64, i, j int) bool {
	if s[i] > s[j] {
		return true
	}
	if s[i] < s[j] {
		return false
	}
	return i < j
}

// intEqual is not a float comparison at all.
func intEqual(a, b int) bool {
	return a == b
}

// bitwiseIntended documents why exactness is wanted.
func bitwiseIntended(snapshot, live float64) bool {
	//arlint:allow floatcmp snapshot is a verbatim copy of live
	return snapshot != live
}
