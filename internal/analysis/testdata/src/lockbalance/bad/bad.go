// Package fixture triggers the lockbalance checker: locks acquired on
// paths that can exit the function without releasing them.
package fixture

import "sync"

type table struct {
	mu sync.Mutex
	rw sync.RWMutex
	n  int
}

// leakOnError returns early while still holding the lock.
func (t *table) leakOnError(fail bool) int {
	t.mu.Lock()
	if fail {
		return -1
	}
	n := t.n
	t.mu.Unlock()
	return n
}

// readLeak never releases the read lock on the skip branch.
func (t *table) readLeak(skip bool) int {
	t.rw.RLock()
	if skip {
		return 0
	}
	n := t.n
	t.rw.RUnlock()
	return n
}
