// Package fixture stays clean under the lockbalance checker: every
// acquisition reaches a release on all paths.
package fixture

import "sync"

type table struct {
	mu sync.Mutex
	rw sync.RWMutex
	n  int
}

// deferred releases through defer, covering every exit.
func (t *table) deferred() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// balanced releases explicitly on each path.
func (t *table) balanced(fail bool) int {
	t.mu.Lock()
	if fail {
		t.mu.Unlock()
		return -1
	}
	n := t.n
	t.mu.Unlock()
	return n
}

// reader pairs the read lock with a deferred read release.
func (t *table) reader() int {
	t.rw.RLock()
	defer t.rw.RUnlock()
	return t.n
}

// handoff acquires for its caller; the sentinel records the contract.
func (t *table) handoff() {
	t.mu.Lock() //arlint:allow lockbalance fixture: caller releases
}
