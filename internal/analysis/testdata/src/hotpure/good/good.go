package fixture

// The canonical kernel shape: writes confined to the output parameter
// (out-writes on the purity lattice), no allocation, every call static.
//
//arlint:hot
func sweep(next, cur []float64, eps float64) float64 {
	delta := 0.0
	for i := range next {
		v := (1 - eps) * cur[i]
		d := v - next[i]
		if d < 0 {
			d = -d
		}
		next[i] = v
		delta += d
	}
	return delta
}

// Strictly pure: reads only.
//
//arlint:hot
func mass(cur []float64, idx []uint32) float64 {
	s := 0.0
	for _, u := range idx {
		s += cur[u]
	}
	return s
}

// Hot functions may call other hot-grade helpers statically.
//
//arlint:hot
func step(next, cur []float64, eps float64) float64 {
	return sweep(next, cur, eps)
}

func caller(a, b []float64) float64 {
	return step(a, b, 0.85) + mass(a, nil)
}
