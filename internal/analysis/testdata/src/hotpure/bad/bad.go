package fixture

var total float64

// impure: accumulates into a package-level variable.
//
//arlint:hot
func sumInto(dst, src []float64) float64 {
	s := 0.0
	for i := range src {
		dst[i] = src[i]
		s += src[i]
	}
	total = s
	return s
}

// allocates: a fresh output buffer on every call.
//
//arlint:hot
func scaled(src []float64, f float64) []float64 {
	out := make([]float64, len(src))
	for i := range src {
		out[i] = f * src[i]
	}
	return out
}

type source interface {
	At(i int) float64
}

// dynamic dispatch inside the sweep loop.
//
//arlint:hot
func gather(dst []float64, s source) {
	for i := range dst {
		dst[i] = s.At(i)
	}
}

func bump() { total++ }

// impure transitively: the helper writes a global.
//
//arlint:hot
func viaHelper(dst []float64) {
	for i := range dst {
		dst[i] = 0
	}
	bump()
}
