// Package fixture passes the ctxflow checker: contexts are forwarded,
// derived contexts count, goroutines observe cancellation, and
// functions without a context parameter are left alone.
package fixture

import "context"

func fetch(ctx context.Context, url string) error { return nil }

// forward passes the parameter straight through.
func forward(ctx context.Context, urls []string) error {
	for _, u := range urls {
		if err := fetch(ctx, u); err != nil {
			return err
		}
	}
	return nil
}

// derived forwards a context derived from the parameter; the
// derivation is traced through the assignment.
func derived(ctx context.Context, url string) error {
	sub, cancel := context.WithCancel(ctx)
	defer cancel()
	return fetch(sub, url)
}

// spawnAware starts a goroutine that selects on ctx.Done(): it dies
// with the request.
func spawnAware(ctx context.Context, ch chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case v, ok := <-ch:
				if !ok {
					return
				}
				_ = v
			}
		}
	}()
}

// noCtx has no context parameter: introducing one is an API decision,
// not a lint fix, so the fresh Background is not flagged here.
func noCtx(url string) {
	fetch(context.Background(), url)
}
