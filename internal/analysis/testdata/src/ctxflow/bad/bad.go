// Package fixture triggers the ctxflow checker: functions that accept
// a context but detach their callees or goroutines from it.
package fixture

import "context"

func fetch(ctx context.Context, url string) error { return nil }

var global = context.Background()

// crawl substitutes a fresh Background for the caller's context: the
// fetches outlive the caller's cancellation.
func crawl(ctx context.Context, urls []string) error {
	for _, u := range urls {
		if err := fetch(context.Background(), u); err != nil {
			return err
		}
	}
	return nil
}

// useGlobal forwards a context unrelated to the parameter.
func useGlobal(ctx context.Context) error {
	return fetch(global, "x")
}

// spawnBlind starts a worker that never consults ctx: a cancelled
// request leaves it looping. The TODO inside is flagged too.
func spawnBlind(ctx context.Context, urls []string) {
	go func() {
		for _, u := range urls {
			fetch(context.TODO(), u)
		}
	}()
}
