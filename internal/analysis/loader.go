package analysis

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	Path  string // import path within the module (or synthetic for fixtures)
	Dir   string
	Name  string // package name; "main" for commands and examples
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	allows map[string]map[int][]string // filename -> line -> allowed checkers
}

func (p *Package) allowed(checker string, pos token.Position) bool {
	for _, name := range p.allows[pos.Filename][pos.Line] {
		if name == checker {
			return true
		}
	}
	return false
}

// Loader parses and type-checks packages using only the standard
// library: module-internal imports are resolved against the module tree,
// everything else through go/importer's source importer (which compiles
// the standard library from GOROOT source and therefore needs no
// pre-built export data).
type Loader struct {
	Fset *token.FileSet

	modPath string
	modRoot string
	std     types.ImporterFrom
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader returns a Loader with a fresh FileSet.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}
}

var moduleRE = regexp.MustCompile(`(?m)^module\s+(\S+)`)

// FindModuleRoot walks up from dir to the nearest directory containing a
// go.mod file.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// LoadModule loads and type-checks every package in the module rooted at
// root (directories named testdata or vendor, hidden directories, and
// nested modules are skipped; _test.go files are not analyzed). Packages
// are returned sorted by import path.
func (l *Loader) LoadModule(root string) ([]*Package, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}
	m := moduleRE.FindSubmatch(data)
	if m == nil {
		return nil, fmt.Errorf("analysis: no module line in %s/go.mod", root)
	}
	l.modPath = string(m[1])
	l.modRoot = root

	var dirs []string
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root {
			if name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
				return filepath.SkipDir
			}
			if _, err := os.Stat(filepath.Join(path, "go.mod")); err == nil {
				return filepath.SkipDir // nested module
			}
		}
		dirs = append(dirs, path)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)

	var pkgs []*Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		path := l.modPath
		if rel != "." {
			path = l.modPath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// LoadDir loads a single standalone package (used for test fixtures). It
// may import the standard library but not module packages.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	return l.loadAt(dir, importPath)
}

// load resolves a module-internal import path to its directory and loads
// it, memoized.
func (l *Loader) load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := l.modRoot
	if path != l.modPath {
		dir = filepath.Join(l.modRoot, filepath.FromSlash(strings.TrimPrefix(path, l.modPath+"/")))
	}
	pkg, err := l.loadAt(dir, path)
	if err != nil {
		return nil, err
	}
	l.pkgs[path] = pkg // may be nil for directories without Go files
	return pkg, nil
}

func (l *Loader) loadAt(dir, path string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}
	var files []*ast.File
	allows := make(map[string]map[int][]string)
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		if !matchFileName(name) {
			continue
		}
		filename := filepath.Join(dir, name)
		f, err := parser.ParseFile(l.Fset, filename, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		match, err := matchBuildConstraint(l.Fset, f)
		if err != nil {
			return nil, fmt.Errorf("analysis: %s: %w", filename, err)
		}
		if !match {
			continue
		}
		files = append(files, f)
		allows[filename] = buildAllows(l.Fset, f)
	}
	if len(files) == 0 {
		return nil, nil
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{
		Importer:    (*loaderImporter)(l),
		FakeImportC: true,
	}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	return &Package{
		Path:   path,
		Dir:    dir,
		Name:   files[0].Name.Name,
		Fset:   l.Fset,
		Files:  files,
		Types:  tpkg,
		Info:   info,
		allows: allows,
	}, nil
}

// Build-constraint filtering: a package may split platform-specific
// code across files gated by //go:build lines or _GOOS/_GOARCH name
// suffixes (e.g. an mmap loader with a portable fallback). Loading both
// sides at once redeclares symbols and breaks type-checking, so the
// loader evaluates constraints for the host platform and skips the
// files the go tool would skip.

var knownOS = map[string]bool{
	"aix": true, "android": true, "darwin": true, "dragonfly": true,
	"freebsd": true, "hurd": true, "illumos": true, "ios": true,
	"js": true, "linux": true, "netbsd": true, "openbsd": true,
	"plan9": true, "solaris": true, "wasip1": true, "windows": true,
}

var knownArch = map[string]bool{
	"386": true, "amd64": true, "arm": true, "arm64": true,
	"loong64": true, "mips": true, "mipsle": true, "mips64": true,
	"mips64le": true, "ppc64": true, "ppc64le": true, "riscv64": true,
	"s390x": true, "wasm": true,
}

// unixOS mirrors the go tool's "unix" build tag membership.
var unixOS = map[string]bool{
	"aix": true, "android": true, "darwin": true, "dragonfly": true,
	"freebsd": true, "hurd": true, "illumos": true, "ios": true,
	"linux": true, "netbsd": true, "openbsd": true, "solaris": true,
}

// matchFileName applies the _GOOS/_GOARCH filename convention for the
// host platform (name has already passed the .go / not-_test filters).
func matchFileName(name string) bool {
	parts := strings.Split(strings.TrimSuffix(name, ".go"), "_")
	if len(parts) >= 3 {
		osPart, archPart := parts[len(parts)-2], parts[len(parts)-1]
		if knownOS[osPart] && knownArch[archPart] {
			return osPart == runtime.GOOS && archPart == runtime.GOARCH
		}
	}
	if len(parts) >= 2 {
		last := parts[len(parts)-1]
		if knownOS[last] {
			return last == runtime.GOOS
		}
		if knownArch[last] {
			return last == runtime.GOARCH
		}
	}
	return true
}

// matchBuildConstraint evaluates a file's //go:build (or legacy
// // +build) line for the host platform. Files without a constraint
// always build; a malformed constraint line is an error, as it is for
// the go tool.
func matchBuildConstraint(fset *token.FileSet, f *ast.File) (bool, error) {
	pkgLine := fset.Position(f.Package).Line
	for _, cg := range f.Comments {
		if fset.Position(cg.Pos()).Line >= pkgLine {
			break
		}
		for _, c := range cg.List {
			if !constraint.IsGoBuild(c.Text) && !constraint.IsPlusBuild(c.Text) {
				continue
			}
			expr, err := constraint.Parse(c.Text)
			if err != nil {
				return false, fmt.Errorf("parsing build constraint: %w", err)
			}
			if !expr.Eval(hostTag) {
				return false, nil
			}
		}
	}
	return true, nil
}

// hostTag reports whether one build tag is satisfied on the analysis
// host. Release tags (go1.N) are all assumed satisfied; cgo is not.
func hostTag(tag string) bool {
	switch {
	case tag == runtime.GOOS || tag == runtime.GOARCH:
		return true
	case tag == "unix":
		return unixOS[runtime.GOOS]
	case strings.HasPrefix(tag, "go1."):
		return true
	}
	return false
}

// loaderImporter routes module-internal imports back into the Loader and
// everything else to the source importer.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(li)
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if l.modPath != "" && (path == l.modPath || strings.HasPrefix(path, l.modPath+"/")) {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			return nil, fmt.Errorf("analysis: import %q resolves to a directory without Go files", path)
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, l.modRoot, 0)
}
