package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// ChanLeak finds goroutines that block forever on a channel the
// declaring function can stop servicing: the worker fan-out pattern of
// internal/core/many.go and the partition runtimes, where workers range
// over a job channel the producer must close, or push results the
// consumer must drain. A goroutine parked on a channel nobody will
// touch again is never collected — under serving traffic the leaked
// goroutines and their stacks accumulate until the process dies.
//
// For each channel created locally (`ch := make(chan T[, cap])`) the
// checker pairs every goroutine-side blocking operation with the
// obligation that must be met on every path from the spawn to the
// declaring function's exit:
//
//	goroutine ranges over ch   -> close(ch) (ranges end only at close)
//	goroutine receives <-ch    -> a send, or close(ch)
//	goroutine sends ch <- v    -> a receive (unbuffered channels only;
//	                              a buffered send may complete alone)
//
// An obligation can be met by the declaring function itself or by a
// sibling goroutine: in the classic pair
//
//	go func() { for v := range ch { use(v) } }()
//	go func() { ch <- 1; close(ch) }()
//
// the consumer's drain services the producer's send and the producer's
// close releases the consumer's range, so the parent owes nothing. A
// goroutine's own operations never settle its own obligations — they
// are sequenced after the very block they would have to release.
//
// Obligations can be met through helpers: passing ch to a static callee
// whose summary (summary.go) closes, drains, or sends on the forwarded
// parameter counts as the matching operation. A deferred close counts
// on every path, mirroring lockbalance's treatment of defer.
//
// Channels that escape the function — returned, stored in a struct or
// another variable, passed to a callee with no summary — are skipped:
// the matching operation may live anywhere.
//
// select statements are modeled: a communication that is a case of a
// select carrying a default clause or a `<-ctx.Done()` cancellation
// case cannot block forever — the goroutine always has another way
// out — so it creates no obligation. Symmetrically it provides no
// effect to siblings: a send that may be skipped (default taken, or
// the context cancelled first) cannot be counted on to release a
// sibling's receive.
var ChanLeak = &Analyzer{
	Name: "chanleak",
	Doc:  "a goroutine must not block forever on a channel no live path closes or drains",
	Run:  runChanLeak,
}

// chanObligation is what one spawned goroutine blocks on.
type chanObligation int

const (
	needClose       chanObligation = iota // goroutine ranges: only close releases it
	needSendOrClose                       // goroutine receives once
	needRecv                              // goroutine sends on an unbuffered channel
)

func (o chanObligation) blocked() string {
	switch o {
	case needClose:
		return "ranges over"
	case needSendOrClose:
		return "receives from"
	default:
		return "sends to"
	}
}

func (o chanObligation) missing() string {
	switch o {
	case needClose:
		return "close it"
	case needSendOrClose:
		return "send to it or close it"
	default:
		return "receive from it"
	}
}

// chanEffect is the set of channel operations a spawned goroutine
// performs, as a bitmask. A sibling's effects can discharge the
// obligation another goroutine's blocking operation created.
type chanEffect uint8

const (
	effSend  chanEffect = 1 << iota // sends at least one value
	effClose                        // closes the channel
	effDrain                        // receives from / ranges over it
)

// discharges reports whether the effects settle the obligation.
func (e chanEffect) discharges(ob chanObligation) bool {
	switch ob {
	case needClose:
		return e&effClose != 0
	case needSendOrClose:
		return e&(effSend|effClose) != 0
	default:
		return e&effDrain != 0
	}
}

// chanKey identifies one pending obligation. Obligations of different
// kinds on the same channel are tracked independently, so a later
// spawn can never weaken what an earlier one requires — a consumer's
// needClose survives a producer's needRecv on the same channel.
type chanKey struct {
	obj types.Object
	ob  chanObligation
}

// chanLeakFact carries, per path, the pending obligations of the
// goroutines spawned so far (valued by the first spawning go
// statement's position, for the diagnostic) and the accumulated
// effects of those goroutines — a later spawn's obligation can be
// serviced by an earlier, still-running sibling. Facts are immutable;
// transfer copies on write. pending is a may-set (union at joins: a
// leak on either path is a leak); spawned is a must-set (intersection:
// only an effect available on every incoming path may discharge).
type chanLeakFact struct {
	pending map[chanKey]token.Pos
	spawned map[types.Object]chanEffect
}

func runChanLeak(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		for _, fn := range functionsOf(file) {
			checkChanLeakFunc(pass, fn)
			checkTimerLeak(pass, fn)
		}
	}
}

// checkTimerLeak is the timerleak sub-check: `case <-time.After(d)`
// inside a loop allocates a fresh timer every iteration, and each timer
// is only released when it fires — when another case usually wins first
// (the whole point of the select), the timers pile up for their full
// duration. A blocking `<-time.After(d)` outside a select is fine: the
// receive waits the timer out.
func checkTimerLeak(pass *Pass, fn funcBody) {
	info := pass.Pkg.Info
	var loops []ast.Stmt
	ast.Inspect(fn.body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit != fn.lit {
			return false // nested literals get their own funcBody pass
		}
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			loops = append(loops, n.(ast.Stmt))
		}
		return true
	})
	if len(loops) == 0 {
		return
	}
	inLoop := func(pos token.Pos) bool {
		for _, l := range loops {
			var body *ast.BlockStmt
			switch l := l.(type) {
			case *ast.ForStmt:
				body = l.Body
			case *ast.RangeStmt:
				body = l.Body
			}
			if body != nil && body.Pos() <= pos && pos <= body.End() {
				return true
			}
		}
		return false
	}
	ast.Inspect(fn.body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit != fn.lit {
			return false
		}
		sel, ok := n.(*ast.SelectStmt)
		if !ok || !inLoop(sel.Pos()) {
			return true
		}
		for _, clause := range sel.Body.List {
			cc, ok := clause.(*ast.CommClause)
			if !ok || cc.Comm == nil {
				continue
			}
			ast.Inspect(cc.Comm, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				if name := timePkgFunc(info, call); name == "After" || name == "Tick" {
					pass.Reportf(call.Pos(),
						"time.%s in a select inside a loop allocates a new timer every iteration and releases it only when it fires; hoist a time.NewTimer/time.NewTicker before the loop with defer Stop() and reuse it in the case", name)
				}
				return true
			})
		}
		return true
	})
}

// timePkgFunc returns the name of the time-package function call names,
// or "" when call is not a direct time.X(...) call.
func timePkgFunc(info *types.Info, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
		return ""
	}
	return fn.Name()
}

func checkChanLeakFunc(pass *Pass, fn funcBody) {
	info := pass.Pkg.Info

	// Local channels: ch := make(chan T[, cap]); buffered channels
	// release single sends without a partner.
	buffered := make(map[types.Object]bool)
	locals := make(map[types.Object]bool)
	ast.Inspect(fn.body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && fn.lit == nil {
			// Channels created inside nested literals get their own
			// funcBody pass.
			return n == fn.body
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE || len(as.Rhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok || id.Name != "make" {
			return true
		}
		if _, builtin := info.Uses[id].(*types.Builtin); !builtin || len(call.Args) == 0 {
			return true
		}
		if t := info.TypeOf(call.Args[0]); t == nil {
			return true
		} else if _, isChan := t.Underlying().(*types.Chan); !isChan {
			return true
		}
		target, ok := as.Lhs[0].(*ast.Ident)
		if !ok || target.Name == "_" {
			return true
		}
		obj := info.Defs[target]
		if obj == nil {
			return true
		}
		locals[obj] = true
		if len(call.Args) >= 2 {
			// A literal 0 capacity is unbuffered; anything else we
			// treat as buffered (can't bound the count statically).
			if lit, isLit := call.Args[1].(*ast.BasicLit); !isLit || lit.Value != "0" {
				buffered[obj] = true
			}
		}
		return true
	})
	if len(locals) == 0 {
		return
	}

	// Escape scan: any use of a local channel outside the recognized
	// operations disqualifies it.
	escaped := make(map[types.Object]bool)
	chanOf := func(e ast.Expr) types.Object {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return nil
		}
		obj := info.Uses[id]
		if obj == nil {
			obj = info.Defs[id]
		}
		if obj != nil && locals[obj] {
			return obj
		}
		return nil
	}
	sanctioned := make(map[*ast.Ident]bool)
	markSanctioned := func(e ast.Expr) {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			sanctioned[id] = true
		}
	}
	ast.Inspect(fn.body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			markSanctioned(n.Chan)
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				markSanctioned(n.X)
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(n.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					markSanctioned(n.X)
				}
			}
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE && len(n.Rhs) == 1 {
				if call, ok := n.Rhs[0].(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "make" {
						markSanctioned(n.Lhs[0])
					}
				}
			}
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok {
				if _, builtin := info.Uses[id].(*types.Builtin); builtin {
					switch id.Name {
					case "close", "len", "cap":
						for _, a := range n.Args {
							markSanctioned(a)
						}
					}
					return true
				}
			}
			// A channel argument to a summarized callee is a known
			// operation; to anything else it's an escape (left
			// unsanctioned).
			if cs := pass.Summaries.CalleeSummaryDevirt(info, n); cs != nil {
				for ai, arg := range n.Args {
					if chanOf(arg) == nil {
						continue
					}
					if pi := cs.ParamIndex(ai); pi >= 0 &&
						(cs.SendsParams[pi] || cs.ClosesParams[pi] || cs.DrainsParams[pi]) {
						markSanctioned(arg)
					}
				}
			}
		}
		return true
	})
	ast.Inspect(fn.body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || sanctioned[id] {
			return true
		}
		obj := info.Uses[id]
		if obj != nil && locals[obj] {
			escaped[obj] = true
		}
		return true
	})

	// Per spawn: the obligations its blocking operations create and the
	// effects its operations provide to siblings.
	spawnOf := make(map[*ast.GoStmt]map[types.Object]chanObligation)
	spawnEffects := make(map[*ast.GoStmt]map[types.Object]chanEffect)
	ast.Inspect(fn.body, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		obs := make(map[types.Object]chanObligation)
		effects := make(map[types.Object]chanEffect)
		record := func(obj types.Object, ob chanObligation) {
			if obj == nil || escaped[obj] {
				return
			}
			// A range obligation dominates; a send on a buffered
			// channel is dropped.
			if ob == needRecv && buffered[obj] {
				return
			}
			if prev, seen := obs[obj]; !seen || ob == needClose || prev == needSendOrClose {
				obs[obj] = ob
			}
		}
		affect := func(obj types.Object, e chanEffect) {
			if obj == nil || escaped[obj] {
				return
			}
			effects[obj] |= e
		}
		fromSummary := func(cs *Summary, args []ast.Expr) {
			for ai, arg := range args {
				obj := chanOf(arg)
				pi := cs.ParamIndex(ai)
				if obj == nil || pi < 0 {
					continue
				}
				if cs.DrainsParams[pi] {
					record(obj, needClose)
					affect(obj, effDrain)
				}
				if cs.SendsParams[pi] {
					record(obj, needRecv)
					affect(obj, effSend)
				}
				if cs.ClosesParams[pi] {
					affect(obj, effClose)
				}
			}
		}
		var scanBody ast.Node
		if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
			scanBody = lit.Body
		} else {
			// go helper(ch, ...): obligations and effects from the
			// callee's summary.
			if cs := pass.Summaries.CalleeSummaryDevirt(info, g.Call); cs != nil {
				fromSummary(cs, g.Call.Args)
			}
			if len(obs) > 0 {
				spawnOf[g] = obs
			}
			if len(effects) > 0 {
				spawnEffects[g] = effects
			}
			return true
		}
		guarded := guardedCommOps(info, fn.body, scanBody)
		ast.Inspect(scanBody, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.SendStmt:
				if guarded[m] {
					return true
				}
				record(chanOf(m.Chan), needRecv)
				affect(chanOf(m.Chan), effSend)
			case *ast.UnaryExpr:
				if m.Op == token.ARROW {
					if guarded[m] {
						return true
					}
					record(chanOf(m.X), needSendOrClose)
					affect(chanOf(m.X), effDrain)
				}
			case *ast.RangeStmt:
				if t := info.TypeOf(m.X); t != nil {
					if _, isChan := t.Underlying().(*types.Chan); isChan {
						record(chanOf(m.X), needClose)
						affect(chanOf(m.X), effDrain)
					}
				}
			case *ast.CallExpr:
				if id, ok := m.Fun.(*ast.Ident); ok && id.Name == "close" && len(m.Args) == 1 {
					if _, builtin := info.Uses[id].(*types.Builtin); builtin {
						affect(chanOf(m.Args[0]), effClose)
					}
					return true
				}
				if cs := pass.Summaries.CalleeSummaryDevirt(info, m); cs != nil {
					fromSummary(cs, m.Args)
				}
			}
			return true
		})
		if len(obs) > 0 {
			spawnOf[g] = obs
		}
		if len(effects) > 0 {
			spawnEffects[g] = effects
		}
		return true
	})
	if len(spawnOf) == 0 {
		return
	}

	g := BuildCFG(fn.body)

	// Deferred closes discharge close obligations at every exit.
	deferredClose := make(map[types.Object]bool)
	for _, d := range g.Defers {
		if id, ok := d.Call.Fun.(*ast.Ident); ok && id.Name == "close" && len(d.Call.Args) == 1 {
			if _, builtin := info.Uses[id].(*types.Builtin); builtin {
				if obj := chanOf(d.Call.Args[0]); obj != nil {
					deferredClose[obj] = true
				}
			}
		}
	}

	// discharges reports whether node settles the obligation ob for obj.
	discharges := func(node ast.Node, obj types.Object, ob chanObligation) bool {
		// A range head over the channel is a parent-side receive loop:
		// it drains the channel, settling a goroutine-sender obligation.
		// (visitNode only yields the head's key/value/X expressions, so
		// the RangeStmt itself is matched here.)
		if rs, ok := node.(*ast.RangeStmt); ok && chanOf(rs.X) == obj && ob == needRecv {
			return true
		}
		found := false
		visitNode(node, func(m ast.Node) bool {
			if found {
				return false
			}
			switch m := m.(type) {
			case *ast.SendStmt:
				if chanOf(m.Chan) == obj && ob == needSendOrClose {
					found = true
				}
			case *ast.UnaryExpr:
				if m.Op == token.ARROW && chanOf(m.X) == obj && (ob == needRecv) {
					found = true
				}
			case *ast.CallExpr:
				if id, ok := m.Fun.(*ast.Ident); ok && id.Name == "close" && len(m.Args) == 1 {
					if _, builtin := info.Uses[id].(*types.Builtin); builtin &&
						chanOf(m.Args[0]) == obj && (ob == needClose || ob == needSendOrClose) {
						found = true
					}
					return true
				}
				if cs := pass.Summaries.CalleeSummaryDevirt(info, m); cs != nil {
					for ai, arg := range m.Args {
						pi := cs.ParamIndex(ai)
						if chanOf(arg) != obj || pi < 0 {
							continue
						}
						switch {
						case ob == needClose && cs.ClosesParams[pi]:
							found = true
						case ob == needSendOrClose && (cs.SendsParams[pi] || cs.ClosesParams[pi]):
							found = true
						case ob == needRecv && cs.DrainsParams[pi]:
							found = true
						}
					}
				}
			}
			return true
		})
		return found
	}

	transfer := func(b *Block, in chanLeakFact) chanLeakFact {
		out := in
		cloned := false
		clone := func() {
			if !cloned {
				c := chanLeakFact{
					pending: make(map[chanKey]token.Pos, len(out.pending)+1),
					spawned: make(map[types.Object]chanEffect, len(out.spawned)+1),
				}
				for k, v := range out.pending {
					c.pending[k] = v
				}
				for k, v := range out.spawned {
					c.spawned[k] = v
				}
				out = c
				cloned = true
			}
		}
		for _, node := range b.Nodes {
			if gs, ok := node.(*ast.GoStmt); ok {
				obs, eff := spawnOf[gs], spawnEffects[gs]
				if len(obs) == 0 && len(eff) == 0 {
					continue
				}
				clone()
				// The new goroutine's operations service siblings
				// spawned earlier on this path.
				for k := range out.pending {
					if eff[k.obj].discharges(k.ob) {
						delete(out.pending, k)
					}
				}
				// Its own obligations may already be serviced by an
				// earlier, still-running sibling — but never by its
				// own effects, which are sequenced after the very
				// block they would have to release (out.spawned does
				// not yet include eff here).
				for obj, ob := range obs {
					if out.spawned[obj].discharges(ob) {
						continue
					}
					k := chanKey{obj, ob}
					if _, seen := out.pending[k]; !seen {
						out.pending[k] = gs.Pos()
					}
				}
				for obj, e := range eff {
					out.spawned[obj] |= e
				}
				continue
			}
			if _, isDefer := node.(*ast.DeferStmt); isDefer {
				continue // deferred discharges apply at exit
			}
			for k := range out.pending {
				if discharges(node, k.obj, k.ob) {
					clone()
					delete(out.pending, k)
				}
			}
		}
		return out
	}

	res := Solve(g, FlowProblem[chanLeakFact]{
		Entry:    chanLeakFact{},
		Transfer: transfer,
		Join: func(a, b chanLeakFact) chanLeakFact {
			var out chanLeakFact
			switch {
			case len(a.pending) == 0:
				out.pending = b.pending
			case len(b.pending) == 0:
				out.pending = a.pending
			default:
				out.pending = make(map[chanKey]token.Pos, len(a.pending)+len(b.pending))
				for k, v := range a.pending {
					out.pending[k] = v
				}
				for k, v := range b.pending {
					if w, ok := out.pending[k]; !ok || v < w {
						out.pending[k] = v
					}
				}
			}
			if len(a.spawned) != 0 && len(b.spawned) != 0 {
				out.spawned = make(map[types.Object]chanEffect, len(a.spawned))
				for k, v := range a.spawned {
					if e := v & b.spawned[k]; e != 0 {
						out.spawned[k] = e
					}
				}
			}
			return out
		},
		Equal: func(a, b chanLeakFact) bool {
			if len(a.pending) != len(b.pending) || len(a.spawned) != len(b.spawned) {
				return false
			}
			for k, v := range a.pending {
				if w, ok := b.pending[k]; !ok || w != v {
					return false
				}
			}
			for k, v := range a.spawned {
				if w, ok := b.spawned[k]; !ok || w != v {
					return false
				}
			}
			return true
		},
	})

	if !res.Reached[g.Exit.Index] {
		return
	}
	exit := res.In[g.Exit.Index].pending
	keys := make([]chanKey, 0, len(exit))
	for k := range exit {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if exit[a] != exit[b] {
			return exit[a] < exit[b]
		}
		if a.obj.Pos() != b.obj.Pos() {
			return a.obj.Pos() < b.obj.Pos()
		}
		return a.ob < b.ob
	})
	reported := make(map[token.Pos]bool)
	for _, k := range keys {
		if k.ob != needRecv && deferredClose[k.obj] {
			continue
		}
		if reported[exit[k]] {
			continue
		}
		reported[exit[k]] = true
		hint := " (or defer the close)"
		if k.ob == needRecv {
			hint = ""
		}
		pass.Reportf(exit[k],
			"goroutine spawned here %s %q, but some path out of %s never %s again: the goroutine blocks forever; %s on every path%s",
			k.ob.blocked(), k.obj.Name(), fn.name, opVerb(k.ob), k.ob.missing(), hint)
	}
}

// guardedCommOps returns the communication operations (sends and
// receive UnaryExprs) appearing as select cases of a select statement
// that has an escape: a default clause, or a cancellation case receiving
// from a context's Done channel. Such an operation can never park its
// goroutine forever — the select always has another way out — so it
// creates no obligation; and because it may be skipped entirely, it
// provides no effect a sibling could rely on. scope is the enclosing
// function body, searched for `done := ctx.Done()` bindings.
func guardedCommOps(info *types.Info, scope, body ast.Node) map[ast.Node]bool {
	var out map[ast.Node]bool
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		hasEscape := false
		for _, stmt := range sel.Body.List {
			cc, ok := stmt.(*ast.CommClause)
			if !ok {
				continue
			}
			if cc.Comm == nil || isCancelRecv(info, scope, cc.Comm) {
				hasEscape = true
				break
			}
		}
		if !hasEscape {
			return true
		}
		for _, stmt := range sel.Body.List {
			cc, ok := stmt.(*ast.CommClause)
			if !ok || cc.Comm == nil {
				continue
			}
			ast.Inspect(cc.Comm, func(m ast.Node) bool {
				switch m := m.(type) {
				case *ast.SendStmt:
					if out == nil {
						out = make(map[ast.Node]bool)
					}
					out[m] = true
				case *ast.UnaryExpr:
					if m.Op == token.ARROW {
						if out == nil {
							out = make(map[ast.Node]bool)
						}
						out[m] = true
					}
				}
				return true
			})
		}
		return true
	})
	return out
}

// isCancelRecv reports whether comm receives from a context's Done
// channel: `<-ctx.Done()` directly, or `<-done` where done is bound to
// a Done() result somewhere in scope.
func isCancelRecv(info *types.Info, scope ast.Node, comm ast.Stmt) bool {
	var x ast.Expr
	switch s := comm.(type) {
	case *ast.ExprStmt:
		if u, ok := ast.Unparen(s.X).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
			x = u.X
		}
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			if u, ok := ast.Unparen(s.Rhs[0]).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				x = u.X
			}
		}
	}
	if x == nil {
		return false
	}
	x = ast.Unparen(x)
	if isDoneCall(info, x) {
		return true
	}
	id, ok := x.(*ast.Ident)
	if !ok {
		return false
	}
	obj := info.Uses[id]
	if obj == nil {
		return false
	}
	bound := false
	ast.Inspect(scope, func(n ast.Node) bool {
		if bound {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			lid, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok {
				continue
			}
			if (info.Defs[lid] == obj || info.Uses[lid] == obj) && isDoneCall(info, as.Rhs[i]) {
				bound = true
			}
		}
		return true
	})
	return bound
}

// isDoneCall reports whether e is a call of context.Context's Done
// method.
func isDoneCall(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Done" {
		return false
	}
	t := info.TypeOf(sel.X)
	return t != nil && isContextType(t)
}

// opVerb renders the missing parent-side operation for the diagnostic.
func opVerb(o chanObligation) string {
	switch o {
	case needClose:
		return "closes it"
	case needSendOrClose:
		return "sends or closes it"
	default:
		return "receives from it"
	}
}
