package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ChanLeak finds goroutines that block forever on a channel the
// declaring function can stop servicing: the worker fan-out pattern of
// internal/core/many.go and the partition runtimes, where workers range
// over a job channel the producer must close, or push results the
// consumer must drain. A goroutine parked on a channel nobody will
// touch again is never collected — under serving traffic the leaked
// goroutines and their stacks accumulate until the process dies.
//
// For each channel created locally (`ch := make(chan T[, cap])`) the
// checker pairs every goroutine-side blocking operation with the
// obligation the declaring function must meet on every path from the
// spawn to its exit:
//
//	goroutine ranges over ch   -> close(ch) (ranges end only at close)
//	goroutine receives <-ch    -> a send, or close(ch)
//	goroutine sends ch <- v    -> a receive (unbuffered channels only;
//	                              a buffered send may complete alone)
//
// Obligations can be met through helpers: passing ch to a static callee
// whose summary (summary.go) closes, drains, or sends on the forwarded
// parameter counts as the matching operation. A deferred close counts
// on every path, mirroring lockbalance's treatment of defer.
//
// Channels that escape the function — returned, stored in a struct or
// another variable, passed to a callee with no summary — are skipped:
// the matching operation may live anywhere.
var ChanLeak = &Analyzer{
	Name: "chanleak",
	Doc:  "a goroutine must not block forever on a channel no live path closes or drains",
	Run:  runChanLeak,
}

// chanObligation is what the parent function owes one spawned goroutine.
type chanObligation int

const (
	needClose chanObligation = iota // goroutine ranges: only close releases it
	needSendOrClose                 // goroutine receives once
	needRecv                        // goroutine sends on an unbuffered channel
)

func (o chanObligation) blocked() string {
	switch o {
	case needClose:
		return "ranges over"
	case needSendOrClose:
		return "receives from"
	default:
		return "sends to"
	}
}

func (o chanObligation) missing() string {
	switch o {
	case needClose:
		return "close it"
	case needSendOrClose:
		return "send to it or close it"
	default:
		return "receive from it"
	}
}

// chanLeakFact maps a channel object to the pending obligation from the
// most recent spawn. Facts are immutable; transfer copies on write.
// chanPending is stored by value so fixpoint detection compares the
// obligation itself, not an allocation identity.
type chanLeakFact map[types.Object]chanPending

type chanPending struct {
	ob    chanObligation
	goPos token.Pos
}

func runChanLeak(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		for _, fn := range functionsOf(file) {
			checkChanLeakFunc(pass, fn)
		}
	}
}

func checkChanLeakFunc(pass *Pass, fn funcBody) {
	info := pass.Pkg.Info

	// Local channels: ch := make(chan T[, cap]); buffered channels
	// release single sends without a partner.
	buffered := make(map[types.Object]bool)
	locals := make(map[types.Object]bool)
	ast.Inspect(fn.body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && fn.lit == nil {
			// Channels created inside nested literals get their own
			// funcBody pass.
			return n == fn.body
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE || len(as.Rhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok || id.Name != "make" {
			return true
		}
		if _, builtin := info.Uses[id].(*types.Builtin); !builtin || len(call.Args) == 0 {
			return true
		}
		if t := info.TypeOf(call.Args[0]); t == nil {
			return true
		} else if _, isChan := t.Underlying().(*types.Chan); !isChan {
			return true
		}
		target, ok := as.Lhs[0].(*ast.Ident)
		if !ok || target.Name == "_" {
			return true
		}
		obj := info.Defs[target]
		if obj == nil {
			return true
		}
		locals[obj] = true
		if len(call.Args) >= 2 {
			// A literal 0 capacity is unbuffered; anything else we
			// treat as buffered (can't bound the count statically).
			if lit, isLit := call.Args[1].(*ast.BasicLit); !isLit || lit.Value != "0" {
				buffered[obj] = true
			}
		}
		return true
	})
	if len(locals) == 0 {
		return
	}

	// Escape scan: any use of a local channel outside the recognized
	// operations disqualifies it.
	escaped := make(map[types.Object]bool)
	chanOf := func(e ast.Expr) types.Object {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return nil
		}
		obj := info.Uses[id]
		if obj == nil {
			obj = info.Defs[id]
		}
		if obj != nil && locals[obj] {
			return obj
		}
		return nil
	}
	sanctioned := make(map[*ast.Ident]bool)
	markSanctioned := func(e ast.Expr) {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			sanctioned[id] = true
		}
	}
	ast.Inspect(fn.body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			markSanctioned(n.Chan)
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				markSanctioned(n.X)
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(n.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					markSanctioned(n.X)
				}
			}
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE && len(n.Rhs) == 1 {
				if call, ok := n.Rhs[0].(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "make" {
						markSanctioned(n.Lhs[0])
					}
				}
			}
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok {
				if _, builtin := info.Uses[id].(*types.Builtin); builtin {
					switch id.Name {
					case "close", "len", "cap":
						for _, a := range n.Args {
							markSanctioned(a)
						}
					}
					return true
				}
			}
			// A channel argument to a summarized callee is a known
			// operation; to anything else it's an escape (left
			// unsanctioned).
			if cs := pass.Summaries.CalleeSummary(info, n); cs != nil {
				for ai, arg := range n.Args {
					if chanOf(arg) == nil {
						continue
					}
					if ai < len(cs.SendsParams) &&
						(cs.SendsParams[ai] || cs.ClosesParams[ai] || cs.DrainsParams[ai]) {
						markSanctioned(arg)
					}
				}
			}
		}
		return true
	})
	ast.Inspect(fn.body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || sanctioned[id] {
			return true
		}
		obj := info.Uses[id]
		if obj != nil && locals[obj] {
			escaped[obj] = true
		}
		return true
	})

	// Obligations: what each spawned goroutine blocks on.
	spawnOf := make(map[*ast.GoStmt]map[types.Object]chanObligation)
	ast.Inspect(fn.body, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		obs := make(map[types.Object]chanObligation)
		record := func(obj types.Object, ob chanObligation) {
			if obj == nil || escaped[obj] {
				return
			}
			// A range obligation dominates; a send on a buffered
			// channel is dropped.
			if ob == needRecv && buffered[obj] {
				return
			}
			if prev, seen := obs[obj]; !seen || ob == needClose || prev == needSendOrClose {
				obs[obj] = ob
			}
		}
		var scanBody ast.Node
		if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
			scanBody = lit.Body
		} else {
			// go helper(ch, ...): obligations from the callee's summary.
			if cs := pass.Summaries.CalleeSummary(info, g.Call); cs != nil {
				for ai, arg := range g.Call.Args {
					obj := chanOf(arg)
					if obj == nil || ai >= len(cs.SendsParams) {
						continue
					}
					if cs.DrainsParams[ai] {
						record(obj, needClose)
					}
					if cs.SendsParams[ai] {
						record(obj, needRecv)
					}
				}
			}
			if len(obs) > 0 {
				spawnOf[g] = obs
			}
			return true
		}
		ast.Inspect(scanBody, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.SendStmt:
				record(chanOf(m.Chan), needRecv)
			case *ast.UnaryExpr:
				if m.Op == token.ARROW {
					record(chanOf(m.X), needSendOrClose)
				}
			case *ast.RangeStmt:
				if t := info.TypeOf(m.X); t != nil {
					if _, isChan := t.Underlying().(*types.Chan); isChan {
						record(chanOf(m.X), needClose)
					}
				}
			case *ast.CallExpr:
				if cs := pass.Summaries.CalleeSummary(info, m); cs != nil {
					for ai, arg := range m.Args {
						obj := chanOf(arg)
						if obj == nil || ai >= len(cs.SendsParams) {
							continue
						}
						if cs.DrainsParams[ai] {
							record(obj, needClose)
						}
						if cs.SendsParams[ai] {
							record(obj, needRecv)
						}
					}
				}
			}
			return true
		})
		if len(obs) > 0 {
			spawnOf[g] = obs
		}
		return true
	})
	if len(spawnOf) == 0 {
		return
	}

	g := BuildCFG(fn.body)

	// Deferred closes discharge close obligations at every exit.
	deferredClose := make(map[types.Object]bool)
	for _, d := range g.Defers {
		if id, ok := d.Call.Fun.(*ast.Ident); ok && id.Name == "close" && len(d.Call.Args) == 1 {
			if _, builtin := info.Uses[id].(*types.Builtin); builtin {
				if obj := chanOf(d.Call.Args[0]); obj != nil {
					deferredClose[obj] = true
				}
			}
		}
	}

	// discharges reports whether node settles the obligation ob for obj.
	discharges := func(node ast.Node, obj types.Object, ob chanObligation) bool {
		// A range head over the channel is a parent-side receive loop:
		// it drains the channel, settling a goroutine-sender obligation.
		// (visitNode only yields the head's key/value/X expressions, so
		// the RangeStmt itself is matched here.)
		if rs, ok := node.(*ast.RangeStmt); ok && chanOf(rs.X) == obj && ob == needRecv {
			return true
		}
		found := false
		visitNode(node, func(m ast.Node) bool {
			if found {
				return false
			}
			switch m := m.(type) {
			case *ast.SendStmt:
				if chanOf(m.Chan) == obj && ob == needSendOrClose {
					found = true
				}
			case *ast.UnaryExpr:
				if m.Op == token.ARROW && chanOf(m.X) == obj && (ob == needRecv) {
					found = true
				}
			case *ast.CallExpr:
				if id, ok := m.Fun.(*ast.Ident); ok && id.Name == "close" && len(m.Args) == 1 {
					if _, builtin := info.Uses[id].(*types.Builtin); builtin &&
						chanOf(m.Args[0]) == obj && (ob == needClose || ob == needSendOrClose) {
						found = true
					}
					return true
				}
				if cs := pass.Summaries.CalleeSummary(info, m); cs != nil {
					for ai, arg := range m.Args {
						if chanOf(arg) != obj || ai >= len(cs.SendsParams) {
							continue
						}
						switch {
						case ob == needClose && cs.ClosesParams[ai]:
							found = true
						case ob == needSendOrClose && (cs.SendsParams[ai] || cs.ClosesParams[ai]):
							found = true
						case ob == needRecv && cs.DrainsParams[ai]:
							found = true
						}
					}
				}
			}
			return true
		})
		return found
	}

	reported := make(map[token.Pos]bool)
	transfer := func(b *Block, in chanLeakFact) chanLeakFact {
		out := in
		cloned := false
		clone := func() {
			if !cloned {
				c := make(chanLeakFact, len(out)+1)
				for k, v := range out {
					c[k] = v
				}
				out = c
				cloned = true
			}
		}
		for _, node := range b.Nodes {
			if gs, ok := node.(*ast.GoStmt); ok {
				if obs := spawnOf[gs]; obs != nil {
					clone()
					for obj, ob := range obs {
						out[obj] = chanPending{ob: ob, goPos: gs.Pos()}
					}
				}
				continue
			}
			if _, isDefer := node.(*ast.DeferStmt); isDefer {
				continue // deferred discharges apply at exit
			}
			for obj, p := range out {
				if discharges(node, obj, p.ob) {
					clone()
					delete(out, obj)
				}
			}
		}
		return out
	}

	res := Solve(g, FlowProblem[chanLeakFact]{
		Entry:    chanLeakFact{},
		Transfer: transfer,
		Join: func(a, b chanLeakFact) chanLeakFact {
			if len(b) == 0 {
				return a
			}
			if len(a) == 0 {
				return b
			}
			out := make(chanLeakFact, len(a)+len(b))
			for k, v := range a {
				out[k] = v
			}
			for k, v := range b {
				out[k] = v
			}
			return out
		},
		Equal: func(a, b chanLeakFact) bool {
			if len(a) != len(b) {
				return false
			}
			for k, v := range a {
				if w, ok := b[k]; !ok || w != v {
					return false
				}
			}
			return true
		},
	})

	if !res.Reached[g.Exit.Index] {
		return
	}
	for obj, p := range res.In[g.Exit.Index] {
		if p.ob != needRecv && deferredClose[obj] {
			continue
		}
		if reported[p.goPos] {
			continue
		}
		reported[p.goPos] = true
		hint := " (or defer the close)"
		if p.ob == needRecv {
			hint = ""
		}
		pass.Reportf(p.goPos,
			"goroutine spawned here %s %q, but some path out of %s never %s again: the goroutine blocks forever; %s on every path%s",
			p.ob.blocked(), obj.Name(), fn.name, opVerb(p.ob), p.ob.missing(), hint)
	}
}

// opVerb renders the missing parent-side operation for the diagnostic.
func opVerb(o chanObligation) string {
	switch o {
	case needClose:
		return "closes it"
	case needSendOrClose:
		return "sends or closes it"
	default:
		return "receives from it"
	}
}
