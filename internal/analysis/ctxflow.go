package analysis

import (
	"go/ast"
	"go/types"
)

// CtxFlow enforces cancellation propagation: a function that accepts a
// context.Context must thread it through. The distributed crawler and
// the partitioned rank runtimes are cancelled top-down — a subtree
// query that times out must stop its fan-out — and a single call that
// substitutes context.Background() (or context.TODO()) for the caller's
// context detaches the whole subtree from that cancellation.
//
// In a function whose signature carries a context.Context parameter,
// the checker reports:
//
//   - a call to a context-accepting callee that passes a fresh
//     context.Background()/context.TODO() instead of the in-scope
//     context (or one derived from it via context.WithCancel and
//     friends — derivation is traced through local assignments)
//   - a call to a context-accepting callee that receives some other
//     context expression not derived from the parameter
//   - a spawned goroutine that ignores cancellation entirely: its body
//     (and its static callees, via the summaries of summary.go) never
//     mentions the context or any value derived from it, yet the
//     function's own context is right there to consume. Fire-and-forget
//     goroutines that outlive a cancelled request are how the crawler
//     leaks fetches.
//
// Functions without a context parameter are not checked: introducing
// context plumbing is an API decision, not a lint fix.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "a ctx-accepting function must forward its ctx to ctx-accepting callees and cancellation-aware goroutines",
	Run:  runCtxFlow,
}

func runCtxFlow(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkCtxFlowFunc(pass, fn)
		}
	}
}

func checkCtxFlowFunc(pass *Pass, fn *ast.FuncDecl) {
	info := pass.Pkg.Info

	// The function's context parameter, if any.
	var ctxObj types.Object
	if fn.Type.Params != nil {
		for _, field := range fn.Type.Params.List {
			for _, name := range field.Names {
				obj := info.Defs[name]
				if obj != nil && isContextType(obj.Type()) {
					ctxObj = obj
					break
				}
			}
			if ctxObj != nil {
				break
			}
		}
	}
	if ctxObj == nil {
		return
	}

	derived := contextDerived(info, fn.Body, ctxObj)

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			checkCtxGoroutine(pass, fn, n, ctxObj, derived)
			// The goroutine body's own calls are judged against the same
			// derived set; keep descending.
			return true
		case *ast.CallExpr:
			ci := contextArgIndex(info, n)
			if ci < 0 || ci >= len(n.Args) {
				return true
			}
			arg := ast.Unparen(n.Args[ci])
			if isFreshContext(info, arg) {
				pass.Reportf(n.Pos(),
					"call to %s passes a fresh %s although %s has %s in scope; forward %s (or a context derived from it) so cancellation propagates",
					callName(n), types.ExprString(arg), fn.Name.Name, ctxObj.Name(), ctxObj.Name())
				return true
			}
			if !exprUsesContext(info, arg, derived) {
				pass.Reportf(n.Pos(),
					"call to %s receives a context not derived from %s's parameter %s; the callee will not observe this request's cancellation",
					callName(n), fn.Name.Name, ctxObj.Name())
			}
		}
		return true
	})
}

// checkCtxGoroutine reports a goroutine spawned by a ctx-carrying
// function whose body is blind to the context: neither the body nor any
// static callee receives the context or a derived value.
func checkCtxGoroutine(pass *Pass, fn *ast.FuncDecl, g *ast.GoStmt, ctxObj types.Object, derived map[types.Object]bool) {
	info := pass.Pkg.Info

	// go helper(args...): aware when any argument carries the context,
	// or the callee's own signature shows it takes none (nothing to
	// forward — but then a body that blocks can't be cancelled either;
	// we only flag when the callee *could* take a context and doesn't
	// get this one, which the CallExpr walk above already reports).
	lit, ok := g.Call.Fun.(*ast.FuncLit)
	if !ok {
		return
	}
	// go func(...){...}(args): the literal is aware when its body or its
	// call arguments mention the context set, directly or through a
	// static callee that it forwards the context to (usesAnyObject scans
	// identifiers, so a forwarded ctx argument inside the body counts).
	if usesAnyObject(info, lit, derived) {
		return
	}
	for _, arg := range g.Call.Args {
		if usesAnyObject(info, arg, derived) {
			return
		}
	}
	// A trivial goroutine that cannot block on anything interesting is
	// noise: only flag bodies that loop, select, send/receive, or call
	// into the module (work that outlives cancellation).
	if !goroutineDoesWork(pass, lit) {
		return
	}
	pass.Reportf(g.Pos(),
		"goroutine spawned in %s ignores %s: its body neither checks ctx.Done() nor calls a context-accepting function; a cancelled request leaves it running",
		fn.Name.Name, ctxObj.Name())
}

// goroutineDoesWork reports whether the literal's body contains
// something worth cancelling: a loop, a select, a channel operation, or
// a call to a function declared in this module (per the call graph).
func goroutineDoesWork(pass *Pass, lit *ast.FuncLit) bool {
	info := pass.Pkg.Info
	works := false
	ast.Inspect(lit.Body, func(m ast.Node) bool {
		if works {
			return false
		}
		switch m := m.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.SelectStmt, *ast.SendStmt:
			works = true
		case *ast.CallExpr:
			if pass.Summaries.CalleeSummary(info, m) != nil {
				works = true
			}
		}
		return true
	})
	return works
}

// isFreshContext matches context.Background() and context.TODO().
func isFreshContext(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Background" && sel.Sel.Name != "TODO") {
		return false
	}
	fnObj, ok := info.Uses[sel.Sel].(*types.Func)
	return ok && fnObj.Pkg() != nil && fnObj.Pkg().Path() == "context"
}

// exprUsesContext reports whether the expression mentions any object of
// the derived-context set. Call results count: ctx-accepting wrappers
// like trace(ctx) return contexts derived from the parameter.
func exprUsesContext(info *types.Info, e ast.Expr, derived map[types.Object]bool) bool {
	return usesAnyObject(info, e, derived)
}
