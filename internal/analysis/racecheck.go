package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"
)

// RaceCheck flags pairs of accesses to the same shared location that can
// run concurrently — a goroutine against its spawner, or two sibling
// goroutines — with at least one write and no lock in common.
//
// The frame analysis runs per function body that spawns (directly or
// through a summarized callee): a lockset dataflow (lockset.go) gives
// the locks certainly held at every node, a live-spawn dataflow tracks
// which goroutines may be running at every node (gen at the go
// statement, kill at a wg.Wait that joins the spawn or a channel
// receive the spawn's completion signals), and a replay pairs each
// access against the accesses of every live spawn. Happens-before
// suppression is exactly those two kill edges: Done-guaranteed
// WaitGroup joins and recv-after-send/close on a signaling channel.
//
// Known exemptions (see DESIGN.md): two accesses indexed at unknown,
// distinct-by-construction positions ("[*]" vs "[*]", the
// worker-indexed slot pattern) are assumed disjoint, and loop variables
// are per-iteration storage under Go ≥ 1.22 so parent-side loop-var
// writes never pair (the gocapture checker owns pre-1.22 capture bugs).
var RaceCheck = &Analyzer{
	Name: "racecheck",
	Doc:  "shared-state accesses from concurrently-live goroutines must share a lock or be joined first",
	Run:  runRaceCheck,
}

func runRaceCheck(pass *Pass) {
	if pass.Summaries == nil {
		return // no interprocedural substrate — nothing sound to say
	}
	for _, file := range pass.Pkg.Files {
		for _, fb := range functionsOf(file) {
			checkRaceFrame(pass, fb)
		}
	}
}

// raceSpawn is one source of concurrent execution in a frame.
type raceSpawn struct {
	id       int
	pos      token.Pos
	desc     string         // "goroutine" or "call"
	accesses []SharedAccess // everything the spawned thread may touch
	wgDone   types.Object   // WaitGroup joined by a parent Wait, if proven
	signal   types.Object   // channel the body sends on / closes at exit
	multi    bool           // spawned in a loop: races with its own siblings
}

// nodeAccesses are one CFG node's accesses split by who performs them:
// seq on the frame's own thread, conc on a goroutine a summarized callee
// leaves running (a pseudo-spawn).
type nodeAccesses struct {
	seq  []SharedAccess
	conc []SharedAccess
}

// liveSpawns maps live spawn ids to their spawn position.
type liveSpawns map[int]token.Pos

func checkRaceFrame(pass *Pass, fb funcBody) {
	info := pass.Pkg.Info
	sums := pass.Summaries
	g := BuildCFG(fb.body)

	hasGo := false
	for _, b := range g.Blocks {
		for _, node := range b.Nodes {
			if _, ok := node.(*ast.GoStmt); ok {
				hasGo = true
			}
		}
	}
	spawny := hasGo
	if !spawny {
		// A callee may leave goroutines running (pseudo-spawns).
		ast.Inspect(fb.body, func(m ast.Node) bool {
			if _, ok := m.(*ast.FuncLit); ok && m != ast.Node(fb.lit) {
				return false
			}
			if call, ok := m.(*ast.CallExpr); ok {
				if cs := sums.CalleeSummaryDevirt(info, call); cs != nil {
					for _, acc := range cs.Accesses {
						if acc.Concurrent {
							spawny = true
							return false
						}
					}
				}
			}
			return true
		})
	}
	if !spawny {
		return
	}

	r := &locResolver{info: info}
	loopVars := frameLoopVars(info, fb)
	waited := waitedWaitGroups(info, fb.body)
	lockFlow := solveLockFlow(info, r, g, fb.name, pass.Pkg.Path)

	// Pre-pass: per-node accesses and the spawn table, in block order so
	// spawn ids are deterministic.
	spawnAt := make(map[ast.Node]*raceSpawn)
	perNode := make(map[ast.Node]*nodeAccesses)
	var spawns []*raceSpawn
	for _, b := range g.Blocks {
		if !lockFlow.Reached[b.Index] {
			continue
		}
		held := lockFlow.In[b.Index]
		for _, node := range b.Nodes {
			na := &nodeAccesses{}
			sink := func(res resolved, write, cc bool, locks []heldLock, pos token.Pos) {
				acc := SharedAccess{Loc: res.loc, Write: write, Concurrent: cc, Locks: locks, Pos: pos}
				if cc {
					na.conc = append(na.conc, acc)
				} else {
					na.seq = append(na.seq, acc)
				}
			}
			scanner := &accessScanner{info: info, sums: sums, r: r, funcName: fb.name, pkgPath: pass.Pkg.Path, sink: sink}
			scanner.scanNode(node, held)
			perNode[node] = na

			if gs, ok := node.(*ast.GoStmt); ok {
				sp := buildSpawn(pass, r, fb, gs, waited, loopVars)
				sp.id = len(spawns)
				spawnAt[node] = sp
				spawns = append(spawns, sp)
			} else if len(na.conc) > 0 {
				// Pseudo-spawn: the callee's unjoined goroutines.
				sp := &raceSpawn{id: len(spawns), pos: node.Pos(), desc: "call", accesses: na.conc}
				spawnAt[node] = sp
				spawns = append(spawns, sp)
			}
			held = lockTransferNode(info, r, node, held, fb.name, pass.Pkg.Path)
		}
	}
	if len(spawns) == 0 {
		return
	}

	liveFlow := Solve(g, FlowProblem[liveSpawns]{
		Entry: liveSpawns{},
		Transfer: func(b *Block, in liveSpawns) liveSpawns {
			out := in
			for _, node := range b.Nodes {
				out = liveTransferNode(info, node, out, spawnAt, spawns)
			}
			return out
		},
		Join: func(a, b liveSpawns) liveSpawns {
			if len(a) == 0 {
				return b
			}
			if len(b) == 0 {
				return a
			}
			out := make(liveSpawns, len(a)+len(b))
			for id, p := range a {
				out[id] = p
			}
			for id, p := range b {
				if q, ok := out[id]; !ok || p < q {
					out[id] = p
				}
			}
			return out
		},
		Equal: func(a, b liveSpawns) bool {
			if len(a) != len(b) {
				return false
			}
			for id := range a {
				if _, ok := b[id]; !ok {
					return false
				}
			}
			return true
		},
	})

	// Replay: pair every node's accesses against every live spawn's.
	rep := &raceReporter{pass: pass, seen: make(map[string]bool), loopVars: loopVars}
	for _, b := range g.Blocks {
		if !liveFlow.Reached[b.Index] {
			continue
		}
		live := liveFlow.In[b.Index]
		for _, node := range b.Nodes {
			na := perNode[node]
			sp := spawnAt[node]
			ids := sortedIDs(live)
			if sp != nil && sp.desc == "goroutine" {
				for _, id := range ids {
					if id == sp.id {
						continue
					}
					rep.pair(sp.accesses, spawns[id].accesses, sp, spawns[id])
				}
				if sp.multi {
					rep.pair(sp.accesses, sp.accesses, sp, sp)
				}
			}
			if na != nil {
				for _, id := range ids {
					if sp != nil && id == sp.id {
						continue // a node's own pseudo-spawn is ordered with its evaluation
					}
					rep.pair(na.seq, spawns[id].accesses, nil, spawns[id])
				}
			}
			live = liveTransferNode(info, node, live, spawnAt, spawns)
		}
	}
}

// buildSpawn computes what one go statement's thread does and how the
// parent can join it.
func buildSpawn(pass *Pass, outer *locResolver, fb funcBody, gs *ast.GoStmt, waited map[types.Object]bool, loopVars map[types.Object]bool) *raceSpawn {
	info := pass.Pkg.Info
	sums := pass.Summaries
	sp := &raceSpawn{pos: gs.Pos(), desc: "goroutine", multi: inFrameLoop(fb, gs)}
	collect := func(res resolved, write, cc bool, locks []heldLock, pos token.Pos) {
		sp.accesses = append(sp.accesses, SharedAccess{Loc: res.loc, Write: write, Concurrent: true, Locks: locks, Pos: pos})
	}
	if lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
		collectThreadAccesses(sums, info, outer, lit, gs.Call, fb.name, pass.Pkg.Path, nil, collect)
		for wg := range waited {
			if goroutineGuaranteesDone(info, sums, lit, wg) {
				sp.wgDone = wg
				break
			}
		}
		sp.signal = spawnSignalChan(info, lit)
		return sp
	}
	cs := sums.CalleeSummaryDevirt(info, gs.Call)
	if cs == nil {
		return sp
	}
	translateSpawnSummary(sums, info, outer, cs, gs.Call, fb.name, pass.Pkg.Path, nil, collect)
	for ai, arg := range gs.Call.Args {
		if pi := cs.ParamIndex(ai); pi >= 0 && pi < len(cs.DonesParams) && cs.DonesParams[pi] {
			for wg := range waited {
				if usesObjectExpr(info, arg, wg) {
					sp.wgDone = wg
				}
			}
		}
	}
	return sp
}

// spawnSignalChan finds the channel a goroutine body signals its
// completion on: a `defer close(ch)` anywhere, or a trailing `close(ch)`
// / `ch <- v` as the body's last statement. A parent-side receive on
// that channel then happens-after everything the body did.
func spawnSignalChan(info *types.Info, lit *ast.FuncLit) types.Object {
	chanOf := func(e ast.Expr) types.Object {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return nil
		}
		obj := info.Uses[id]
		if obj == nil {
			return nil
		}
		if _, isChan := obj.Type().Underlying().(*types.Chan); !isChan {
			return nil
		}
		return obj
	}
	closeArg := func(call *ast.CallExpr) types.Object {
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || id.Name != "close" || len(call.Args) != 1 {
			return nil
		}
		if _, builtin := info.Uses[id].(*types.Builtin); !builtin {
			return nil
		}
		return chanOf(call.Args[0])
	}
	for _, stmt := range lit.Body.List {
		if ds, ok := stmt.(*ast.DeferStmt); ok {
			if obj := closeArg(ds.Call); obj != nil {
				return obj
			}
		}
	}
	if len(lit.Body.List) == 0 {
		return nil
	}
	switch last := lit.Body.List[len(lit.Body.List)-1].(type) {
	case *ast.SendStmt:
		return chanOf(last.Chan)
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			return closeArg(call)
		}
	}
	return nil
}

// liveTransferNode applies one node's spawn/join effects to the live
// set: gen at a spawn, kill at a wg.Wait joining the spawn's WaitGroup,
// kill at a receive from a single-instance spawn's signal channel.
func liveTransferNode(info *types.Info, node ast.Node, live liveSpawns, spawnAt map[ast.Node]*raceSpawn, spawns []*raceSpawn) liveSpawns {
	out := live
	cloned := false
	clone := func() {
		if !cloned {
			c := make(liveSpawns, len(out)+1)
			for k, v := range out {
				c[k] = v
			}
			out = c
			cloned = true
		}
	}
	for _, call := range callsIn(node) {
		obj, _, ok := wgMethodCall(info, call, "Wait")
		if !ok {
			continue
		}
		for id := range out {
			if spawns[id].wgDone != nil && spawns[id].wgDone == obj {
				clone()
				delete(out, id)
			}
		}
	}
	if ch := recvChanOf(info, node); ch != nil {
		for id := range out {
			if !spawns[id].multi && spawns[id].signal != nil && spawns[id].signal == ch {
				clone()
				delete(out, id)
			}
		}
	}
	if sp := spawnAt[node]; sp != nil {
		clone()
		out[sp.id] = sp.pos
	}
	return out
}

// recvChanOf matches a CFG node that performs a blocking receive from a
// plain-identifier channel: `<-ch` as a statement, the sole RHS of an
// assignment, or a bare expression node (a select communication clause's
// comm appears as the first node of its clause block, so the kill is
// correctly scoped to the path where that case fired).
func recvChanOf(info *types.Info, node ast.Node) types.Object {
	var e ast.Expr
	switch n := node.(type) {
	case *ast.ExprStmt:
		e = n.X
	case *ast.AssignStmt:
		if len(n.Rhs) == 1 {
			e = n.Rhs[0]
		}
	default:
		if x, ok := node.(ast.Expr); ok {
			e = x
		}
	}
	if e == nil {
		return nil
	}
	ue, ok := ast.Unparen(e).(*ast.UnaryExpr)
	if !ok || ue.Op != token.ARROW {
		return nil
	}
	id, ok := ast.Unparen(ue.X).(*ast.Ident)
	if !ok {
		return nil
	}
	return info.Uses[id]
}

// frameLoopVars collects the loop variables declared by for/range
// statements of this frame (nested literals excluded). Under Go ≥ 1.22
// each iteration gets its own instance, so a parent-side loop-var write
// cannot race with a goroutine's captured copy.
func frameLoopVars(info *types.Info, fb funcBody) map[types.Object]bool {
	vars := make(map[types.Object]bool)
	def := func(e ast.Expr) {
		if id, ok := e.(*ast.Ident); ok {
			if obj := info.Defs[id]; obj != nil {
				vars[obj] = true
			}
		}
	}
	ast.Inspect(fb.body, func(m ast.Node) bool {
		switch n := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt:
			if as, ok := n.Init.(*ast.AssignStmt); ok && as.Tok == token.DEFINE {
				for _, lhs := range as.Lhs {
					def(lhs)
				}
			}
		case *ast.RangeStmt:
			if n.Tok == token.DEFINE {
				if n.Key != nil {
					def(n.Key)
				}
				if n.Value != nil {
					def(n.Value)
				}
			}
		}
		return true
	})
	return vars
}

// inFrameLoop reports whether pos sits inside a for/range body belonging
// to this frame (not inside a nested literal) — a spawn there runs once
// per iteration, so its instances race with each other.
func inFrameLoop(fb funcBody, gs *ast.GoStmt) bool {
	in := false
	ast.Inspect(fb.body, func(m ast.Node) bool {
		if in {
			return false
		}
		switch n := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt:
			if n.Body.Pos() <= gs.Pos() && gs.End() <= n.Body.End() {
				in = true
			}
		case *ast.RangeStmt:
			if n.Body.Pos() <= gs.Pos() && gs.End() <= n.Body.End() {
				in = true
			}
		}
		return true
	})
	return in
}

// raceReporter pairs access sets and reports conflicting pairs once.
type raceReporter struct {
	pass     *Pass
	seen     map[string]bool
	loopVars map[types.Object]bool
}

// pair reports every racing combination between two access sets. spA is
// nil when as are the frame's own (sequential) accesses.
func (rep *raceReporter) pair(as, bs []SharedAccess, spA, spB *raceSpawn) {
	for _, a := range as {
		if rep.loopVars[a.Loc.Obj] {
			continue
		}
		for _, b := range bs {
			if rep.loopVars[b.Loc.Obj] {
				continue
			}
			if a.Loc.rootKey() != b.Loc.rootKey() {
				continue
			}
			if !conflict(a, b) {
				continue
			}
			if !disjointLocks(a.Locks, b.Locks) {
				continue
			}
			rep.report(a, b, spA, spB)
		}
	}
}

func (rep *raceReporter) report(a, b SharedAccess, spA, spB *raceSpawn) {
	// Anchor the diagnostic at a write.
	if !a.Write {
		a, b = b, a
		spA, spB = spB, spA
	}
	k1, k2 := accessKeyAt(a), accessKeyAt(b)
	if k2 < k1 {
		k1, k2 = k2, k1
	}
	if key := k1 + "\x00" + k2; rep.seen[key] {
		return
	} else {
		rep.seen[key] = true
	}
	fset := rep.pass.Pkg.Fset
	who := func(sp *raceSpawn) string {
		if sp == nil {
			return "this function"
		}
		return sp.desc + " spawned at line " + itoaLine(fset, sp.pos)
	}
	other := accessVerb(b) + " of " + b.Loc.Name + " by " + who(spB)
	if spA != nil && spB != nil && spA.id == spB.id {
		other = "the same access in a sibling instance (spawned in a loop)"
	}
	rep.pass.Reportf(a.Pos,
		"write to %s by %s races with %s (locksets %s vs %s): guard both sides with one mutex, or join the goroutine (wg.Wait / receive its completion signal) before the conflicting access",
		a.Loc.Name, who(spA), other, lockSetName(a.Locks), lockSetName(b.Locks))
}

func accessKeyAt(a SharedAccess) string {
	return a.Loc.key() + "@" + strconv.Itoa(int(a.Pos))
}

func accessVerb(a SharedAccess) string {
	if a.Write {
		return "write"
	}
	return "read"
}

// lockSetName renders a lockset for diagnostics: "{mu, c.mu}" or "{}".
func lockSetName(locks []heldLock) string {
	if len(locks) == 0 {
		return "{}"
	}
	names := make([]string, len(locks))
	for i, l := range locks {
		names[i] = l.Name
	}
	sort.Strings(names)
	return "{" + strings.Join(names, ", ") + "}"
}

func itoaLine(fset *token.FileSet, pos token.Pos) string {
	return strconv.Itoa(fset.Position(pos).Line)
}

func sortedIDs(live liveSpawns) []int {
	if len(live) == 0 {
		return nil
	}
	ids := make([]int, 0, len(live))
	for id := range live {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}
