package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// loadCostSrc type-checks one in-memory file and returns its computed
// summaries keyed by function name.
func loadCostSrc(t *testing.T, src string) map[string]*Summary {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "p.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := NewLoader().LoadDir(dir, "fixture/cost")
	if err != nil {
		t.Fatal(err)
	}
	graph := BuildCallGraph([]*Package{pkg})
	sums := ComputeSummaries(graph)
	out := make(map[string]*Summary)
	for _, n := range graph.Nodes {
		out[n.Func.Name()] = sums.byFunc[n.Func]
	}
	return out
}

// TestCostDepthComposition: loop nesting composes through calls — a
// per-node loop around a per-edge callee is depth 3, a small constant
// unroll stays straight-line.
func TestCostDepthComposition(t *testing.T) {
	sums := loadCostSrc(t, `package p

func perEdge(rows [][]float64, out []float64) {
	for i, row := range rows {
		s := 0.0
		for _, x := range row {
			s += x
		}
		out[i] = s
	}
}

func perNodeOverEdges(rows [][]float64, out []float64, reps int) {
	for r := 0; r < reps; r++ {
		perEdge(rows, out)
	}
}

func unrolled(out []float64) {
	for k := 0; k < 4; k++ {
		out[k] = 0
	}
}
`)
	if got := sums["perEdge"].Cost.Depth; got != 2 {
		t.Errorf("perEdge depth = %d, want 2", got)
	}
	if sums["perEdge"].Cost.HighTrip {
		t.Errorf("perEdge marked high-trip; its loops are data-bound ranges")
	}
	if got := sums["perNodeOverEdges"].Cost.Depth; got != 3 {
		t.Errorf("perNodeOverEdges depth = %d, want 3 (callee inlined at call-site depth)", got)
	}
	if !sums["perNodeOverEdges"].Cost.HighTrip {
		t.Errorf("perNodeOverEdges not marked high-trip; its bound is not a compile-time constant")
	}
	if got := sums["unrolled"].Cost; got != (Cost{}) {
		t.Errorf("unrolled cost = %+v, want bottom (constant trip ≤ %d is straight-line)", got, costSmallTrip)
	}
}

// TestCostWeights: allocation and spawn sites are charged by the loop
// nesting around them.
func TestCostWeights(t *testing.T) {
	sums := loadCostSrc(t, `package p

func allocFlat() []float64 { return make([]float64, 8) }

func allocInLoop(n int) [][]float64 {
	var out [][]float64
	for i := 0; i < n; i++ {
		out = append(out, make([]float64, 8))
	}
	return out
}

func spawnInLoop(n int) {
	for i := 0; i < n; i++ {
		go func() {}()
	}
}
`)
	if got := sums["allocFlat"].Cost.AllocW; got != 1 {
		t.Errorf("allocFlat AllocW = %d, want 1", got)
	}
	// append + make, both at depth 1: 2 sites × costTripFactor.
	if got := sums["allocInLoop"].Cost.AllocW; got != 2*costTripFactor {
		t.Errorf("allocInLoop AllocW = %d, want %d", got, 2*costTripFactor)
	}
	if got := sums["spawnInLoop"].Cost.SpawnW; got != costTripFactor {
		t.Errorf("spawnInLoop SpawnW = %d, want %d", got, costTripFactor)
	}
}

// TestCostRecursiveSCC: the fixpoint over a recursive SCC terminates,
// weight-free recursion stays cheap, and weight inside a cycle
// saturates (the model cannot bound the repetition).
func TestCostRecursiveSCC(t *testing.T) {
	sums := loadCostSrc(t, `package p

func pingPure(n int) int {
	if n <= 0 {
		return 0
	}
	return pongPure(n - 1)
}

func pongPure(n int) int { return pingPure(n - 1) }

func pingAlloc(n int) []int {
	if n <= 0 {
		return nil
	}
	return append(pongAlloc(n-1), n)
}

func pongAlloc(n int) []int { return pingAlloc(n - 1) }
`)
	if got := sums["pingPure"].Cost; got != (Cost{}) {
		t.Errorf("pingPure cost = %+v, want bottom (no weights anywhere in the cycle)", got)
	}
	for _, name := range []string{"pingAlloc", "pongAlloc"} {
		if got := sums[name].Cost.AllocW; got != costWeightCap {
			t.Errorf("%s AllocW = %d, want saturation at %d (alloc inside a recursive cycle)", name, got, costWeightCap)
		}
	}
}

// TestCostDevirtJoin: an interface call charges the dispatch site and
// joins the candidates' costs pessimistically.
func TestCostDevirtJoin(t *testing.T) {
	sums := loadCostSrc(t, `package p

type ranker interface{ rank(n int) float64 }

type cheap struct{}

func (cheap) rank(n int) float64 { return float64(n) }

type heavy struct{}

func (heavy) rank(n int) float64 {
	s := 0.0
	for i := 0; i < n; i++ {
		buf := make([]float64, n)
		s += buf[0]
	}
	return s
}

func dispatch(r ranker, n int) float64 { return r.rank(n) }
`)
	d := sums["dispatch"].Cost
	if d.DynW != 1 {
		t.Errorf("dispatch DynW = %d, want 1 (one dynamic site, no loop)", d.DynW)
	}
	if d.Depth != 1 {
		t.Errorf("dispatch depth = %d, want 1 (heaviest candidate inlined)", d.Depth)
	}
	if d.AllocW != costTripFactor {
		t.Errorf("dispatch AllocW = %d, want %d (heavy candidate's loop alloc)", d.AllocW, costTripFactor)
	}
}

// TestCostReportAndChurn: the report ranks the convergence engine at
// the top and prints its heaviest path; SpawnChurn marks the thin
// spawn+join wrapper but not the pooled engine.
func TestCostReportAndChurn(t *testing.T) {
	dir := t.TempDir()
	src := `package p

import "sync"

func sweep(next, cur []float64) float64 {
	d := 0.0
	for i := range next {
		next[i] = 0.85 * cur[i]
		d += next[i] - cur[i]
	}
	return d
}

func churnySweep(next, cur []float64, parts int) {
	var wg sync.WaitGroup
	for w := 0; w < parts; w++ {
		wg.Add(1)
		go func() { defer wg.Done(); sweep(next, cur) }()
	}
	wg.Wait()
}

func engine(next, cur []float64, iters int) {
	for i := 0; i < iters; i++ {
		sweep(next, cur)
		next, cur = cur, next
	}
}
`
	if err := os.WriteFile(filepath.Join(dir, "p.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := NewLoader().LoadDir(dir, "fixture/costreport")
	if err != nil {
		t.Fatal(err)
	}
	graph := BuildCallGraph([]*Package{pkg})
	sums := ComputeSummaries(graph)

	for name, want := range map[string]bool{"churnySweep": true, "engine": false, "sweep": false} {
		var got bool
		for _, n := range graph.Nodes {
			if n.Func.Name() == name {
				got = sums.byFunc[n.Func].SpawnChurn
			}
		}
		if got != want {
			t.Errorf("SpawnChurn(%s) = %v, want %v", name, got, want)
		}
	}

	var b strings.Builder
	if err := graph.WriteCostReport(&b, sums, 2); err != nil {
		t.Fatal(err)
	}
	report := b.String()
	if !strings.Contains(report, "top 2 of 3 functions") {
		t.Errorf("report header wrong:\n%s", report)
	}
	// churnySweep and engine share the work term (unbounded loop over a
	// per-node body); churnySweep's spawn weight breaks the tie.
	first := strings.SplitN(report, "\n", 3)[1]
	if !strings.Contains(first, "p.churnySweep") || !strings.Contains(first, "unbounded-loop") {
		t.Errorf("top entry should be p.churnySweep with unbounded-loop, got: %s", first)
	}
	if !strings.Contains(report, "path: p.engine -> p.sweep") {
		t.Errorf("missing heaviest path for engine:\n%s", report)
	}
}
