package analysis

// This file implements a generic forward dataflow solver over the CFGs
// of cfg.go. A checker instantiates FlowProblem with its fact type —
// a set of pending errors, the set of held locks, the set of tainted
// variables — and Solve runs the standard worklist iteration to a
// fixpoint: facts flow along CFG edges, merge at join points, and are
// transformed by each block's statements.
//
// Fact types must behave like immutable values: Transfer must return a
// fresh fact (or the input unchanged), never mutate its input in place,
// because a block's output fact is shared by all its successors.

// FlowProblem describes one forward dataflow analysis over fact type F.
type FlowProblem[F any] struct {
	// Entry is the fact at function entry.
	Entry F
	// Transfer computes the fact after executing block b with fact in.
	Transfer func(b *Block, in F) F
	// Join merges facts arriving over two CFG edges.
	Join func(a, b F) F
	// Equal reports whether two facts are equal (fixpoint detection).
	Equal func(a, b F) bool
}

// FlowResult carries the fixpoint facts of one Solve run.
type FlowResult[F any] struct {
	// In[b.Index] is the fact at entry of block b; Out[b.Index] at its
	// exit. Unreachable blocks have Reached[b.Index] == false and hold
	// zero facts.
	In, Out []F
	Reached []bool
}

// Solve runs the worklist iteration to a fixpoint and returns the
// per-block facts. The iteration terminates for any finite-height
// lattice; checkers in this package use finite sets over the variables
// of one function, which ascend at most once per element.
func Solve[F any](g *CFG, p FlowProblem[F]) *FlowResult[F] {
	n := len(g.Blocks)
	res := &FlowResult[F]{
		In:      make([]F, n),
		Out:     make([]F, n),
		Reached: make([]bool, n),
	}
	res.In[g.Entry.Index] = p.Entry
	res.Reached[g.Entry.Index] = true
	res.Out[g.Entry.Index] = p.Transfer(g.Entry, p.Entry)

	work := make([]*Block, 0, n)
	inWork := make([]bool, n)
	push := func(b *Block) {
		if !inWork[b.Index] {
			inWork[b.Index] = true
			work = append(work, b)
		}
	}
	for _, s := range g.Entry.Succs {
		push(s)
	}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		inWork[b.Index] = false

		var in F
		first := true
		for _, pred := range b.Preds {
			if !res.Reached[pred.Index] {
				continue
			}
			if first {
				in = res.Out[pred.Index]
				first = false
			} else {
				in = p.Join(in, res.Out[pred.Index])
			}
		}
		if first && b != g.Entry {
			continue // no reachable predecessor yet
		}
		if b == g.Entry {
			in = p.Entry
		}
		out := p.Transfer(b, in)
		if res.Reached[b.Index] && p.Equal(res.In[b.Index], in) && p.Equal(res.Out[b.Index], out) {
			continue
		}
		res.Reached[b.Index] = true
		res.In[b.Index] = in
		res.Out[b.Index] = out
		for _, s := range b.Succs {
			push(s)
		}
	}
	return res
}
