package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule materializes a synthetic multi-package module under a
// temp dir and loads it, returning the packages keyed by name.
func writeModule(t *testing.T, files map[string]string) map[string]*Package {
	t.Helper()
	root := t.TempDir()
	files["go.mod"] = "module cgtest\n\ngo 1.22\n"
	for rel, src := range files {
		path := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	pkgs, err := NewLoader().LoadModule(root)
	if err != nil {
		t.Fatalf("loading synthetic module: %v", err)
	}
	byName := make(map[string]*Package, len(pkgs))
	for _, p := range pkgs {
		byName[p.Name] = p
	}
	return byName
}

// nodeByName finds the graph node whose rendered name (pkg.Func or
// pkg.Recv.Method) matches.
func nodeByName(t *testing.T, cg *CallGraph, name string) *CGNode {
	t.Helper()
	for _, n := range cg.Nodes {
		if n.String() == name {
			return n
		}
	}
	t.Fatalf("no call-graph node named %s (have %d nodes)", name, len(cg.Nodes))
	return nil
}

func callsTo(n *CGNode, callee *CGNode) bool {
	for _, c := range n.Calls {
		if c == callee {
			return true
		}
	}
	return false
}

// TestCallGraphEdges asserts the three edge kinds the builder resolves:
// plain same-package calls, qualified cross-package calls, and method
// calls through a concrete receiver type.
func TestCallGraphEdges(t *testing.T) {
	pkgs := writeModule(t, map[string]string{
		"util/util.go": `package util

func Helper() int { return 1 }

type Counter struct{ n int }

func (c *Counter) Inc() { c.n++ }
`,
		"app/app.go": `package app

import "cgtest/util"

func local() int { return util.Helper() }

func Run() int {
	var c util.Counter
	c.Inc()
	return local()
}
`,
	})
	cg := BuildCallGraph([]*Package{pkgs["util"], pkgs["app"]})

	run := nodeByName(t, cg, "app.Run")
	local := nodeByName(t, cg, "app.local")
	helper := nodeByName(t, cg, "util.Helper")
	inc := nodeByName(t, cg, "util.Counter.Inc")

	if !callsTo(run, local) {
		t.Errorf("missing same-package edge app.Run -> app.local")
	}
	if !callsTo(local, helper) {
		t.Errorf("missing cross-package edge app.local -> util.Helper")
	}
	if !callsTo(run, inc) {
		t.Errorf("missing concrete-method edge app.Run -> util.Counter.Inc")
	}
	for _, caller := range helper.Callers {
		if caller == local {
			return
		}
	}
	t.Errorf("util.Helper.Callers does not list app.local")
}

// TestCallGraphSCCOrder asserts the condensation: a mutually recursive
// pair shares one SCC, and SCCs come out callee-first (bottom-up), so
// the summary solver sees every callee before its callers.
func TestCallGraphSCCOrder(t *testing.T) {
	pkgs := writeModule(t, map[string]string{
		"rec/rec.go": `package rec

func Even(n int) bool {
	if n == 0 {
		return true
	}
	return Odd(n - 1)
}

func Odd(n int) bool {
	if n == 0 {
		return false
	}
	return Even(n - 1)
}

func Driver(n int) bool { return Even(n) }
`,
	})
	cg := BuildCallGraph([]*Package{pkgs["rec"]})

	even := nodeByName(t, cg, "rec.Even")
	odd := nodeByName(t, cg, "rec.Odd")
	driver := nodeByName(t, cg, "rec.Driver")

	if even.SCC != odd.SCC {
		t.Errorf("Even (scc %d) and Odd (scc %d) should share an SCC", even.SCC, odd.SCC)
	}
	if driver.SCC == even.SCC {
		t.Errorf("Driver must not join the recursive SCC")
	}
	if even.SCC > driver.SCC {
		t.Errorf("callee SCC %d ordered after caller SCC %d; condensation is not bottom-up", even.SCC, driver.SCC)
	}
	sccNodes := 0
	for _, scc := range cg.SCCs {
		sccNodes += len(scc)
	}
	if sccNodes != len(cg.Nodes) {
		t.Errorf("SCCs cover %d nodes, graph has %d", sccNodes, len(cg.Nodes))
	}
}

// TestSummaryConvergence runs the bottom-up solver over a module with a
// recursive pair and allocation/error-drop chains: the test completing
// at all proves the within-SCC fixpoint terminates, and the assertions
// prove effects propagate through one and two levels of calls.
func TestSummaryConvergence(t *testing.T) {
	pkgs := writeModule(t, map[string]string{
		"fx/fx.go": `package fx

import "errors"

func fail() error { return errors.New("x") }

// drops checks but cannot propagate: no error result.
func drops() {
	if err := fail(); err != nil {
		return
	}
}

// MakeBuf allocates directly; Wrap allocates through it.
func MakeBuf() []int { return make([]int, 4) }

func Wrap() []int { return MakeBuf() }

// Ping/Pong are mutually recursive and Pong allocates: the fixpoint
// must converge with both marked allocating.
func Ping(n int) []int {
	if n == 0 {
		return nil
	}
	return Pong(n - 1)
}

func Pong(n int) []int {
	if n == 0 {
		return make([]int, 1)
	}
	return Ping(n - 1)
}

// Pure neither allocates nor drops.
func Pure(a, b int) int { return a + b }
`,
	})
	cg := BuildCallGraph([]*Package{pkgs["fx"]})
	sums := ComputeSummaries(cg)

	get := func(name string) *Summary {
		s := sums.Of(nodeByName(t, cg, "fx."+name).Func)
		if s == nil {
			t.Fatalf("no summary for fx.%s", name)
		}
		return s
	}

	if s := get("drops"); !s.DropsError || s.DropSource != "fail" {
		t.Errorf("drops: DropsError=%v DropSource=%q, want true/\"fail\"", s.DropsError, s.DropSource)
	}
	if s := get("MakeBuf"); !s.Allocates {
		t.Errorf("MakeBuf: Allocates=false, want true")
	}
	if s := get("Wrap"); !s.Allocates || !strings.Contains(s.AllocVia, "MakeBuf") {
		t.Errorf("Wrap: Allocates=%v AllocVia=%q, want true via MakeBuf", s.Allocates, s.AllocVia)
	}
	if s := get("Ping"); !s.Allocates {
		t.Errorf("Ping: Allocates=false, want true (via recursive Pong)")
	}
	if s := get("Pong"); !s.Allocates {
		t.Errorf("Pong: Allocates=false, want true")
	}
	if s := get("Pure"); s.Allocates || s.DropsError {
		t.Errorf("Pure: Allocates=%v DropsError=%v, want false/false", s.Allocates, s.DropsError)
	}
}

// TestSummaryParamIndex pins the argument-to-parameter mapping: fixed
// signatures map positions one-to-one and reject out-of-range, while a
// variadic callee folds every position at or past the variadic slot
// onto the variadic parameter.
func TestSummaryParamIndex(t *testing.T) {
	fixed := &Summary{SendsParams: make([]bool, 2)}
	variadic := &Summary{SendsParams: make([]bool, 2), Variadic: true}
	onlyVariadic := &Summary{SendsParams: make([]bool, 1), Variadic: true}
	var none *Summary
	cases := []struct {
		name string
		s    *Summary
		ai   int
		want int
	}{
		{"fixed first", fixed, 0, 0},
		{"fixed last", fixed, 1, 1},
		{"fixed out of range", fixed, 2, -1},
		{"variadic fixed slot", variadic, 0, 0},
		{"variadic first spread", variadic, 1, 1},
		{"variadic later spread", variadic, 2, 1},
		{"variadic far spread", variadic, 7, 1},
		{"only variadic", onlyVariadic, 3, 0},
		{"nil summary", none, 0, -1},
	}
	for _, c := range cases {
		if got := c.s.ParamIndex(c.ai); got != c.want {
			t.Errorf("%s: ParamIndex(%d) = %d, want %d", c.name, c.ai, got, c.want)
		}
	}
}

// TestSummaryConditionalDefer pins the DonesParams must-guarantee
// against conditional defers: a defer covers only the paths that pass
// through its registration, so `if c { defer wg.Done(); return }`
// proves nothing for the fall-through path, while an unconditional
// defer — first statement or later — still proves the guarantee.
func TestSummaryConditionalDefer(t *testing.T) {
	pkgs := writeModule(t, map[string]string{
		"w/w.go": `package w

import "sync"

func CondDone(wg *sync.WaitGroup, j int) {
	if j < 0 {
		defer wg.Done()
		return
	}
	j++
}

func AlwaysDone(wg *sync.WaitGroup) {
	defer wg.Done()
}

func LateDone(wg *sync.WaitGroup, j int) {
	j++
	defer wg.Done()
}

func BranchDone(wg *sync.WaitGroup, j int) {
	if j < 0 {
		defer wg.Done()
		return
	}
	wg.Done()
}
`,
	})
	cg := BuildCallGraph([]*Package{pkgs["w"]})
	sums := ComputeSummaries(cg)
	dones := func(name string) bool {
		s := sums.Of(nodeByName(t, cg, "w."+name).Func)
		if s == nil {
			t.Fatalf("no summary for w.%s", name)
		}
		return s.DonesParams[0]
	}
	if dones("CondDone") {
		t.Errorf("CondDone: DonesParams[0] = true, but the fall-through path never Dones")
	}
	if !dones("AlwaysDone") {
		t.Errorf("AlwaysDone: DonesParams[0] = false, want true (unconditional defer)")
	}
	if !dones("LateDone") {
		t.Errorf("LateDone: DonesParams[0] = false, want true (defer registered on every path)")
	}
	if !dones("BranchDone") {
		t.Errorf("BranchDone: DonesParams[0] = false, want true (each branch Dones)")
	}
}

// TestWgBalanceFixGating pins the -fix safety rule: the defer
// insertion is offered only for a goroutine body with no Done at all.
// A body that already Dones on some paths (directly or behind a
// conditional defer) gets the diagnostic without an edit — stacking
// defer wg.Done() on top would over-release and panic at runtime with
// "sync: negative WaitGroup counter".
func TestWgBalanceFixGating(t *testing.T) {
	pkg, err := NewLoader().LoadDir(filepath.Join("testdata", "src", "wgbalance", "bad"), "fixture/wgbalance/fixgate")
	if err != nil {
		t.Fatal(err)
	}
	var offered, suppressed int
	for _, d := range Run([]*Package{pkg}, []*Analyzer{WgBalance}) {
		switch {
		case strings.Contains(d.Message, "mentionsOnly"):
			if d.Fix == nil {
				t.Errorf("no fix offered for the Done-free goroutine in mentionsOnly: %s", d.Message)
			} else {
				offered++
			}
		case strings.Contains(d.Message, "skipped"), strings.Contains(d.Message, "condDefer"):
			if d.Fix != nil {
				t.Errorf("fix offered for a goroutine that already Dones on some path (would double-Done): %s", d.Message)
			} else {
				suppressed++
			}
		}
	}
	if offered == 0 {
		t.Errorf("positive control missing: no diagnostic for mentionsOnly carried a fix")
	}
	if suppressed < 2 {
		t.Errorf("expected ≥2 suppressed-fix diagnostics (skipped, condDefer), saw %d", suppressed)
	}
}
