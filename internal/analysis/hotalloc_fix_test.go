package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestHotAllocHoistFix drives the loop-invariant-make fix through the
// whole pipeline: the diagnostic carries a fix exactly when the size is
// loop-invariant, ApplyFixes hoists the define before the loop, and a
// rerun over the rewritten file no longer flags the hoisted make (the
// fix never fights the checker).
func TestHotAllocHoistFix(t *testing.T) {
	dir := t.TempDir()
	src := `package pagerank

func compute(n, maxIterations int) []float64 {
	scores := make([]float64, n)
	for iter := 1; iter <= maxIterations; iter++ {
		buf := make([]float64, n)
		buf[0] = scores[0]
		scores[0] = buf[0] + 1
	}
	return scores
}

func variantSize(maxIterations int) {
	for iter := 1; iter <= maxIterations; iter++ {
		buf := make([]float64, iter) // size depends on the loop variable
		_ = buf
	}
}
`
	path := filepath.Join(dir, "p.go")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	loader := NewLoader()
	pkg, err := loader.LoadDir(dir, "fixture/hoist")
	if err != nil {
		t.Fatal(err)
	}
	diags := Run([]*Package{pkg}, []*Analyzer{HotAlloc})
	if len(diags) != 2 {
		t.Fatalf("want 2 diagnostics, got %d: %v", len(diags), diags)
	}
	// Sorted by position: compute's invariant make first (fixable), then
	// variantSize's iter-dependent make (diagnostic only).
	if diags[0].Fix == nil {
		t.Error("loop-invariant make in compute carries no fix")
	}
	if diags[1].Fix != nil {
		t.Errorf("iter-sized make in variantSize must not be auto-hoisted: %+v", diags[1].Fix)
	}

	fixed, err := ApplyFixes(loader.Fset, diags)
	if err != nil {
		t.Fatal(err)
	}
	if len(fixed) != 1 || fixed[0] != path {
		t.Fatalf("fixed files = %v, want just %s", fixed, path)
	}
	out, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	hoisted := string(out)
	forAt := strings.Index(hoisted, "for iter")
	makeAt := strings.Index(hoisted, "buf := make([]float64, n)")
	if makeAt < 0 || forAt < 0 || makeAt > forAt {
		t.Fatalf("make not hoisted before the loop:\n%s", hoisted)
	}

	// Idempotency: only the unfixable diagnostic survives the rewrite.
	pkg2, err := NewLoader().LoadDir(dir, "fixture/hoist2")
	if err != nil {
		t.Fatalf("rewritten file does not load: %v", err)
	}
	rest := Run([]*Package{pkg2}, []*Analyzer{HotAlloc})
	if len(rest) != 1 || !strings.Contains(rest[0].Message, "variantSize") {
		t.Errorf("after fixing, want only the variantSize diagnostic, got %v", rest)
	}
}
