package analysis

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata")

// TestGolden runs each checker over its fixture packages under
// testdata/src/<checker>/<case>/ and compares the diagnostics against
// <case>/expected.txt (one "file:line:col: checker: message" per line;
// an empty file means the fixture must be clean).
func TestGolden(t *testing.T) {
	byName := make(map[string]*Analyzer, len(All))
	for _, a := range All {
		byName[a.Name] = a
	}

	checkerDirs, err := filepath.Glob(filepath.Join("testdata", "src", "*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(checkerDirs) == 0 {
		t.Fatal("no fixture directories under testdata/src")
	}
	loader := NewLoader()
	for _, checkerDir := range checkerDirs {
		checker := filepath.Base(checkerDir)
		a, ok := byName[checker]
		if !ok {
			t.Errorf("testdata/src/%s does not match any checker", checker)
			continue
		}
		caseDirs, err := filepath.Glob(filepath.Join(checkerDir, "*"))
		if err != nil {
			t.Fatal(err)
		}
		if len(caseDirs) < 2 {
			t.Errorf("checker %s needs at least a triggering and a clean fixture, have %d", checker, len(caseDirs))
		}
		for _, caseDir := range caseDirs {
			caseName := filepath.Base(caseDir)
			t.Run(checker+"/"+caseName, func(t *testing.T) {
				pkg, err := loader.LoadDir(caseDir, "fixture/"+checker+"/"+caseName)
				if err != nil {
					t.Fatalf("loading fixture: %v", err)
				}
				if pkg == nil {
					t.Fatalf("fixture %s has no Go files", caseDir)
				}
				var got strings.Builder
				for _, d := range Run([]*Package{pkg}, []*Analyzer{a}) {
					fmt.Fprintf(&got, "%s:%d:%d: %s: %s\n",
						filepath.Base(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Checker, d.Message)
				}
				goldenPath := filepath.Join(caseDir, "expected.txt")
				if *update {
					if err := os.WriteFile(goldenPath, []byte(got.String()), 0o644); err != nil {
						t.Fatal(err)
					}
					return
				}
				want, err := os.ReadFile(goldenPath)
				if err != nil {
					t.Fatalf("missing golden file (run `go test -run TestGolden -update ./internal/analysis`): %v", err)
				}
				if got.String() != string(want) {
					t.Errorf("diagnostics mismatch for %s\n--- got ---\n%s--- want ---\n%s", caseDir, got.String(), want)
				}
			})
		}
	}
}

// TestGoldenCoverage enforces the acceptance criterion directly: every
// checker has at least one triggering fixture (non-empty golden) and at
// least one clean fixture (empty golden).
func TestGoldenCoverage(t *testing.T) {
	for _, a := range All {
		goldens, err := filepath.Glob(filepath.Join("testdata", "src", a.Name, "*", "expected.txt"))
		if err != nil {
			t.Fatal(err)
		}
		triggering, clean := 0, 0
		for _, g := range goldens {
			data, err := os.ReadFile(g)
			if err != nil {
				t.Fatal(err)
			}
			if len(strings.TrimSpace(string(data))) > 0 {
				triggering++
			} else {
				clean++
			}
		}
		if triggering == 0 || clean == 0 {
			t.Errorf("checker %s: want ≥1 triggering and ≥1 clean fixture, have %d triggering / %d clean",
				a.Name, triggering, clean)
		}
	}
}

// TestAllowSentinelParsing covers the comma form and reason suffix.
func TestAllowSentinelParsing(t *testing.T) {
	loader := NewLoader()
	dir := t.TempDir()
	src := `package p

func f(a, b float64) bool {
	//arlint:allow floatcmp,tolerances both are intended here
	return a == b
}
`
	if err := os.WriteFile(filepath.Join(dir, "p.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(dir, "fixture/allow")
	if err != nil {
		t.Fatal(err)
	}
	if diags := Run([]*Package{pkg}, []*Analyzer{FloatCmp}); len(diags) != 0 {
		t.Errorf("comma-separated sentinel not honored: %v", diags)
	}
}

// TestDiagnosticsSorted checks the Run contract: findings come back
// ordered by position regardless of checker execution order.
func TestDiagnosticsSorted(t *testing.T) {
	loader := NewLoader()
	pkg, err := loader.LoadDir(filepath.Join("testdata", "src", "floatcmp", "bad"), "fixture/sorted")
	if err != nil {
		t.Fatal(err)
	}
	diags := Run([]*Package{pkg}, All)
	sorted := sort.SliceIsSorted(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Pos.Column <= b.Pos.Column
	})
	if !sorted {
		t.Errorf("diagnostics not sorted by position: %v", diags)
	}
}
