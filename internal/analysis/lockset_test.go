package analysis

import (
	"strings"
	"testing"
)

// lockAccessOf finds the summary access on the package-level variable
// named root, preferring writes (the anchor racecheck reports at).
func lockAccessOf(t *testing.T, s *Summary, root string) SharedAccess {
	t.Helper()
	var found *SharedAccess
	for i := range s.Accesses {
		a := &s.Accesses[i]
		if a.Loc.Obj == nil || a.Loc.Obj.Name() != root {
			continue
		}
		if found == nil || (a.Write && !found.Write) {
			found = a
		}
	}
	if found == nil {
		t.Fatalf("no access on %s in summary (have %d accesses)", root, len(s.Accesses))
	}
	return *found
}

// TestLocksetFlow pins the lockset dataflow on its three defining
// behaviors: intersection at CFG merges (a lock taken on one arm only
// guards nothing after the join), defer-scoped unlock (the lock stays
// held to function exit), and explicit unlock killing the lock for the
// code below it.
func TestLocksetFlow(t *testing.T) {
	pkgs := writeModule(t, map[string]string{
		"lk/lk.go": `package lk

import "sync"

var (
	mu sync.Mutex
	g  int
	h  int
)

// merged locks on one arm only: the intersection join at the merge
// point drops mu, so the write to g is unguarded.
func merged(cond bool) {
	if cond {
		mu.Lock()
		defer mu.Unlock()
	}
	g++
}

// bothArms locks on every path into the merge: mu survives the join.
func bothArms(cond bool) {
	if cond {
		mu.Lock()
	} else {
		mu.Lock()
	}
	g++
	mu.Unlock()
}

// deferGuard holds mu to exit: a deferred unlock runs after the last
// statement, so it must never kill the lock mid-body.
func deferGuard() {
	mu.Lock()
	defer mu.Unlock()
	g++
}

// window unlocks explicitly between the two writes: g is guarded, h is
// not.
func window() {
	mu.Lock()
	g++
	mu.Unlock()
	h++
}
`,
	})
	cg := BuildCallGraph([]*Package{pkgs["lk"]})
	sums := ComputeSummaries(cg)
	get := func(name string) *Summary {
		s := sums.Of(nodeByName(t, cg, "lk."+name).Func)
		if s == nil {
			t.Fatalf("no summary for lk.%s", name)
		}
		return s
	}

	if a := lockAccessOf(t, get("merged"), "g"); len(a.Locks) != 0 {
		t.Errorf("merged: g written with lockset %v, want empty (one-armed lock must not survive the merge)", a.Locks)
	}
	if a := lockAccessOf(t, get("bothArms"), "g"); len(a.Locks) != 1 || !strings.HasSuffix(a.Locks[0].Name, "mu") {
		t.Errorf("bothArms: g written with lockset %v, want {mu} (both arms lock)", a.Locks)
	}
	if a := lockAccessOf(t, get("deferGuard"), "g"); len(a.Locks) != 1 {
		t.Errorf("deferGuard: g written with lockset %v, want {mu} (deferred unlock is scoped to exit)", a.Locks)
	}
	if a := lockAccessOf(t, get("window"), "g"); len(a.Locks) != 1 {
		t.Errorf("window: g written with lockset %v, want {mu}", a.Locks)
	}
	if a := lockAccessOf(t, get("window"), "h"); len(a.Locks) != 0 {
		t.Errorf("window: h written with lockset %v, want empty (mu.Unlock kills the lock)", a.Locks)
	}
}

// TestLockOrderFindings drives the module-wide lock-order analysis:
// an ABBA pair of functions yields a cycle finding, a helper that
// re-locks its caller's mutex yields a double-lock finding, and
// consistently-ordered code yields nothing.
func TestLockOrderFindings(t *testing.T) {
	pkgs := writeModule(t, map[string]string{
		"ord/ord.go": `package ord

import "sync"

var (
	muA sync.Mutex
	muB sync.Mutex
)

func ab() {
	muA.Lock()
	muB.Lock()
	muB.Unlock()
	muA.Unlock()
}

func ba() {
	muB.Lock()
	muA.Lock()
	muA.Unlock()
	muB.Unlock()
}

type box struct {
	mu sync.Mutex
	v  int
}

func (b *box) get() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.v
}

// relock calls get while already holding b.mu: a self-edge in the
// order graph, i.e. a guaranteed self-deadlock.
func (b *box) relock() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.get()
}
`,
		"clean/clean.go": `package clean

import "sync"

var (
	first  sync.Mutex
	second sync.Mutex
)

func one() {
	first.Lock()
	second.Lock()
	second.Unlock()
	first.Unlock()
}

func two() {
	first.Lock()
	second.Lock()
	second.Unlock()
	first.Unlock()
}
`,
	})

	dirty := ComputeSummaries(BuildCallGraph([]*Package{pkgs["ord"]}))
	var cycles, doubles int
	for _, f := range dirty.lockOrderFindings() {
		switch {
		case strings.Contains(f.message, "lock order cycle"):
			cycles++
		case strings.Contains(f.message, "not reentrant"):
			doubles++
		default:
			t.Errorf("unclassified lockorder finding: %s", f.message)
		}
	}
	if cycles != 1 {
		t.Errorf("ord: %d cycle findings, want 1 (the muA/muB ABBA pair)", cycles)
	}
	if doubles != 1 {
		t.Errorf("ord: %d double-lock findings, want 1 (relock re-entering b.mu via get)", doubles)
	}

	cleanSums := ComputeSummaries(BuildCallGraph([]*Package{pkgs["clean"]}))
	if fs := cleanSums.lockOrderFindings(); len(fs) != 0 {
		t.Errorf("clean: %d findings on consistently-ordered locks, want 0: %+v", len(fs), fs)
	}
}

// TestClassSCCs pins the cycle detector itself: a two-node cycle is
// one SCC, an acyclic chain yields none of size ≥ 2.
func TestClassSCCs(t *testing.T) {
	cyclic := classSCCs([]string{"a", "b", "c"}, map[string][]string{
		"a": {"b"}, "b": {"a"}, "c": {"a"},
	})
	var big [][]string
	for _, scc := range cyclic {
		if len(scc) >= 2 {
			big = append(big, scc)
		}
	}
	if len(big) != 1 || len(big[0]) != 2 {
		t.Errorf("cyclic: SCCs ≥2 = %v, want exactly {a,b}", big)
	}

	acyclic := classSCCs([]string{"a", "b", "c"}, map[string][]string{
		"a": {"b"}, "b": {"c"},
	})
	for _, scc := range acyclic {
		if len(scc) >= 2 {
			t.Errorf("acyclic chain produced a cycle SCC: %v", scc)
		}
	}
}

// TestAccessFixpointRecursion runs the access-set propagation on a
// mutually-recursive SCC: the bottom-up fixpoint must converge (the
// test completing at all is the termination check), both functions must
// see both globals through each other, and the dedup must keep the
// access lists from growing across passes.
func TestAccessFixpointRecursion(t *testing.T) {
	pkgs := writeModule(t, map[string]string{
		"rec/rec.go": `package rec

var (
	g int
	h int
)

func ping(n int) {
	if n <= 0 {
		return
	}
	g++
	pong(n - 1)
}

func pong(n int) {
	if n <= 0 {
		return
	}
	h++
	ping(n - 1)
}
`,
	})
	cg := BuildCallGraph([]*Package{pkgs["rec"]})
	sums := ComputeSummaries(cg)
	for _, fn := range []string{"ping", "pong"} {
		s := sums.Of(nodeByName(t, cg, "rec."+fn).Func)
		if s == nil {
			t.Fatalf("no summary for rec.%s", fn)
		}
		lockAccessOf(t, s, "g")
		lockAccessOf(t, s, "h")
		seen := make(map[string]bool, len(s.Accesses))
		for _, a := range s.Accesses {
			k := a.dedupKey()
			if seen[k] {
				t.Errorf("rec.%s: duplicate access %s in summary — union is not deduping", fn, k)
			}
			seen[k] = true
		}
		if len(s.Accesses) > maxSummaryAccesses {
			t.Errorf("rec.%s: %d accesses exceeds the cap %d", fn, len(s.Accesses), maxSummaryAccesses)
		}
	}
}
