package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Tolerances flags numeric literals used as convergence tolerances,
// damping factors, or epsilon guards in library code: those values are
// repository-wide conventions and must reference the canonical constants
// in internal/numeric (numeric.DefaultTolerance and friends), so that a
// tolerance cannot silently drift between the rankers that must agree on
// it. Bressan et al.'s local-centrality work is a catalogue of how
// approximation guarantees rot when normalization and tolerance
// conventions diverge between components; this checker makes the
// convention mechanical.
//
// Flagged positions:
//   - assignments and declarations whose target is tolerance-named
//     (Tolerance, InnerTolerance, tol, eps, Epsilon, damping, *Freeze)
//     with a float-literal right-hand side
//   - composite-literal fields with a tolerance-named key and a
//     float-literal value (Options{Tolerance: 1e-8})
//   - ordered comparisons of a math.Abs(...) expression against a float
//     literal (the tolerance-guard idiom)
//
// internal/numeric itself is exempt (it is the canonical source), as are
// commands, examples and tests. Use //arlint:allow tolerances where a
// one-off literal is genuinely local.
var Tolerances = &Analyzer{
	Name:        "tolerances",
	Doc:         "tolerance/epsilon literals must reference internal/numeric constants",
	LibraryOnly: true,
	Run:         runTolerances,
}

func runTolerances(pass *Pass) {
	if strings.HasSuffix(pass.Pkg.Path, "internal/numeric") {
		return
	}
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.AssignStmt:
				if len(node.Lhs) != len(node.Rhs) {
					return true
				}
				for i, lhs := range node.Lhs {
					if name, ok := targetName(lhs); ok && isToleranceName(name) {
						if lit := floatLit(node.Rhs[i]); lit != nil {
							pass.Reportf(lit.Pos(),
								"tolerance literal %s assigned to %s; use a constant from internal/numeric", lit.Value, name)
						}
					}
				}
			case *ast.ValueSpec:
				for i, name := range node.Names {
					if i < len(node.Values) && isToleranceName(name.Name) {
						if lit := floatLit(node.Values[i]); lit != nil {
							pass.Reportf(lit.Pos(),
								"tolerance literal %s declared as %s; use a constant from internal/numeric", lit.Value, name.Name)
						}
					}
				}
			case *ast.KeyValueExpr:
				key, ok := node.Key.(*ast.Ident)
				if !ok || !isToleranceName(key.Name) {
					return true
				}
				if lit := floatLit(node.Value); lit != nil {
					pass.Reportf(lit.Pos(),
						"tolerance literal %s for field %s; use a constant from internal/numeric", lit.Value, key.Name)
				}
			case *ast.BinaryExpr:
				switch node.Op {
				case token.LSS, token.LEQ, token.GTR, token.GEQ:
				default:
					return true
				}
				if lit := floatLit(node.Y); lit != nil && containsMathAbs(node.X) {
					pass.Reportf(lit.Pos(),
						"tolerance guard compares math.Abs against literal %s; use a constant from internal/numeric", lit.Value)
				} else if lit := floatLit(node.X); lit != nil && containsMathAbs(node.Y) {
					pass.Reportf(lit.Pos(),
						"tolerance guard compares math.Abs against literal %s; use a constant from internal/numeric", lit.Value)
				}
			}
			return true
		})
	}
}

// isToleranceName reports whether an identifier names a tolerance-like
// quantity by this repository's conventions.
func isToleranceName(name string) bool {
	n := strings.ToLower(name)
	return n == "tol" || n == "eps" || n == "epsilon" || n == "damping" ||
		strings.HasSuffix(n, "tolerance") || strings.HasSuffix(n, "freeze")
}

// targetName extracts the name written by an assignment target.
func targetName(e ast.Expr) (string, bool) {
	switch t := e.(type) {
	case *ast.Ident:
		return t.Name, true
	case *ast.SelectorExpr:
		return t.Sel.Name, true
	}
	return "", false
}

// floatLit unwraps e to a floating-point basic literal (allowing parens
// and a leading minus), or returns nil.
func floatLit(e ast.Expr) *ast.BasicLit {
	switch t := e.(type) {
	case *ast.BasicLit:
		if t.Kind == token.FLOAT {
			return t
		}
	case *ast.ParenExpr:
		return floatLit(t.X)
	case *ast.UnaryExpr:
		if t.Op == token.SUB {
			return floatLit(t.X)
		}
	}
	return nil
}

// containsMathAbs reports whether the expression contains a call to
// math.Abs.
func containsMathAbs(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Abs" {
			if pkg, ok := sel.X.(*ast.Ident); ok && pkg.Name == "math" {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
