package analysis

import (
	"encoding/json"
	"io"
	"path/filepath"
	"strings"
)

// Machine-readable output formats for the driver. Both formats address
// files relative to a root directory (the module root), so the output
// is stable across checkouts.

// jsonFinding is one diagnostic in the -format=json output.
type jsonFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Checker string `json:"checker"`
	Message string `json:"message"`
	Fixable bool   `json:"fixable,omitempty"`
}

// WriteJSON encodes diags as a JSON array of findings with root-relative
// file paths.
func WriteJSON(w io.Writer, diags []Diagnostic, root string) error {
	out := make([]jsonFinding, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonFinding{
			File:    relPath(root, d.Pos.Filename),
			Line:    d.Pos.Line,
			Column:  d.Pos.Column,
			Checker: d.Checker,
			Message: d.Message,
			Fixable: d.Fix != nil,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// SARIF 2.1.0 output, the minimal subset GitHub code scanning ingests:
// one run, one rule per checker (the rule ID is the checker name, which
// is stable across releases), one result per diagnostic with a physical
// location carrying a root-relative URI and a start line/column region.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId,omitempty"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF encodes diags as a SARIF 2.1.0 log. Every analyzer appears
// in the rule table even when it has no findings, so rule metadata is
// stable regardless of what fired.
func WriteSARIF(w io.Writer, analyzers []*Analyzer, diags []Diagnostic, root string) error {
	rules := make([]sarifRule, len(analyzers))
	index := make(map[string]int, len(analyzers))
	for i, a := range analyzers {
		rules[i] = sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}}
		index[a.Name] = i
	}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		idx, ok := index[d.Checker]
		if !ok {
			idx = len(rules)
			index[d.Checker] = idx
			rules = append(rules, sarifRule{ID: d.Checker, ShortDescription: sarifMessage{Text: d.Checker}})
		}
		results = append(results, sarifResult{
			RuleID:    d.Checker,
			RuleIndex: idx,
			Level:     "warning",
			Message:   sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{
						URI:       filepath.ToSlash(relPath(root, d.Pos.Filename)),
						URIBaseID: "%SRCROOT%",
					},
					Region: sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: sarifDriver{Name: "arlint", Rules: rules}}, Results: results}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// relPath renders file relative to root when it lies below it, else
// unchanged.
func relPath(root, file string) string {
	if root == "" {
		return file
	}
	//arlint:allow errflow a failed Rel falls back to the absolute path by design
	if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return file
}
