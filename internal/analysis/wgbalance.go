package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// WgBalance verifies that every sync.WaitGroup Add is matched by a
// guaranteed Done: for each `wg.Add(n)` call there must be, in the same
// function, a goroutine (or a plain call path) that calls `wg.Done()`
// on every path to its exit — directly, via `defer wg.Done()`, or via a
// static callee whose summary (summary.go) guarantees Done on the
// forwarded *sync.WaitGroup parameter. An Add whose Done can be skipped
// on some path leaves Wait blocked forever: the parallel power
// iteration's per-iteration barrier (internal/pagerank/parallel.go) and
// the worker fan-out of RankMany (internal/core/many.go) both deadlock
// on exactly this defect.
//
// Checked:
//   - wg.Add with no Done anywhere for the same WaitGroup expression
//   - a spawned goroutine that calls Done on some paths only (an early
//     return before Done) — defer is the sanctioned form
//   - Done hidden in a helper: `go worker(&wg)` is accepted when
//     worker's summary proves Done on all paths of worker
//   - worker-pool lifecycle bounds: a counted spawn loop (`for i := 0;
//     i < workers; i++` starting one goroutine per iteration that sends
//     exactly once on a completion channel, or Add(1)s a WaitGroup) must
//     share its bound with the counted loop that drains those
//     completions; differing bounds block the drain forever or leak the
//     surplus goroutines. Workers that send per-job (the send sits in an
//     inner loop) are exempt — their completion count is not the spawn
//     count.
//
// Not checked:
//   - Add/Done counts (Add(2) with one Done call per goroutine run is
//     beyond static counting); the checker matches acquisition sites to
//     guaranteed-release sites, like lockbalance
//   - WaitGroups that escape: stored in a struct, passed to a call with
//     no summary — the pairing may live anywhere
//
// -fix inserts `defer wg.Done()` at the top of the one goroutine body
// that references the WaitGroup but never calls Done. A body that
// already calls Done on some paths (or hands the WaitGroup to a callee
// that might) gets the diagnostic without the automatic edit: stacking
// a defer on top of a partial Done would over-release on the paths
// that already Done and panic with "sync: negative WaitGroup counter".
var WgBalance = &Analyzer{
	Name: "wgbalance",
	Doc:    "every wg.Add must be matched by a Done on all paths of the spawned function (callees count)",
	CanFix: true,
	Run:    runWgBalance,
}

func runWgBalance(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkWgBalanceFunc(pass, fn)
			checkPoolLifecycle(pass, fn)
		}
	}
}

// poolLoop is one counted `for i := start; i < bound; i++` loop with the
// pool traffic it carries once per iteration: completion channels its
// goroutines send one value on, channels it receives one value from, and
// WaitGroups it Add(1)s or Done()s. Anything under a nested loop or a
// non-goroutine literal is excluded — those run an unknown number of
// times per iteration, so they carry no per-iteration count.
type poolLoop struct {
	stmt    *ast.ForStmt
	bound   ast.Expr
	spawns  map[types.Object]string // chan → name: one goroutine/iteration, one send each
	drains  map[types.Object]string // chan → name: one receive/iteration
	wgAdds  map[types.Object]string // wg → name: one Add(1)/iteration
	wgDones map[types.Object]string // wg → name: one Done()/iteration
}

// checkPoolLifecycle pairs each counted spawn loop with the counted
// drain loop consuming its completions and reports when the two loops
// render different bound expressions: the pool then produces and
// consumes different counts, so the drain blocks forever (bound too
// large) or goroutines leak blocked on their completion send (bound too
// small). Bounds are compared as rendered expressions — `workers` vs
// `workers` matches, `workers` vs `len(jobs)` does not — which misses
// aliased equal values but never flags a shared spelling.
func checkPoolLifecycle(pass *Pass, fn *ast.FuncDecl) {
	info := pass.Pkg.Info
	var loops []*poolLoop
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if fs, ok := n.(*ast.ForStmt); ok {
			if bound, ok := countedBound(fs); ok {
				loops = append(loops, classifyPoolLoop(info, fs, bound))
			}
		}
		return true
	})
	for _, s := range loops {
		for _, d := range loops {
			if s == d {
				continue
			}
			sb, db := types.ExprString(s.bound), types.ExprString(d.bound)
			if sb == db {
				continue
			}
			spawnLine := pass.Pkg.Fset.Position(s.stmt.Pos()).Line
			if name, ok := sharedPoolObj(s.spawns, d.drains); ok {
				pass.Reportf(d.stmt.Pos(),
					"pool drain loop runs %s times but the spawn loop on line %d starts %s goroutines, each sending once on %s; the bounds must match or the difference blocks the drain forever / leaks goroutines",
					db, spawnLine, sb, name)
				continue
			}
			if name, ok := sharedPoolObj(s.wgAdds, d.wgDones); ok {
				pass.Reportf(d.stmt.Pos(),
					"this loop calls %s.Done() %s times but the loop on line %d calls %s.Add(1) %s times; the mismatched counts leave Wait blocked forever or panic the WaitGroup",
					name, db, spawnLine, name, sb)
			}
		}
	}
}

// sharedPoolObj returns the name of an object present in both maps,
// picking the lexically-smallest name so diagnostics are deterministic.
func sharedPoolObj(a, b map[types.Object]string) (string, bool) {
	best := ""
	for obj, name := range a {
		if _, ok := b[obj]; ok && (best == "" || name < best) {
			best = name
		}
	}
	return best, best != ""
}

// countedBound matches the canonical counted loop
// `for i := <expr>; i < bound; i++` (single init variable, strict
// less-than, increment-by-one post) and returns its bound expression.
// Anything looser — <=, a decrement, a mutated index — has no obvious
// iteration count and is left alone.
func countedBound(fs *ast.ForStmt) (ast.Expr, bool) {
	init, ok := fs.Init.(*ast.AssignStmt)
	if !ok || init.Tok != token.DEFINE || len(init.Lhs) != 1 {
		return nil, false
	}
	iv, ok := init.Lhs[0].(*ast.Ident)
	if !ok {
		return nil, false
	}
	cond, ok := fs.Cond.(*ast.BinaryExpr)
	if !ok || cond.Op != token.LSS {
		return nil, false
	}
	cx, ok := ast.Unparen(cond.X).(*ast.Ident)
	if !ok || cx.Name != iv.Name {
		return nil, false
	}
	post, ok := fs.Post.(*ast.IncDecStmt)
	if !ok || post.Tok != token.INC {
		return nil, false
	}
	px, ok := ast.Unparen(post.X).(*ast.Ident)
	if !ok || px.Name != iv.Name {
		return nil, false
	}
	return cond.Y, true
}

// classifyPoolLoop collects the per-iteration pool traffic of one
// counted loop. Nested loops and plain function literals are cut off
// (their multiplicity is unknown); goroutine literals are entered once
// to look for top-level completion sends.
func classifyPoolLoop(info *types.Info, fs *ast.ForStmt, bound ast.Expr) *poolLoop {
	p := &poolLoop{
		stmt: fs, bound: bound,
		spawns:  make(map[types.Object]string),
		drains:  make(map[types.Object]string),
		wgAdds:  make(map[types.Object]string),
		wgDones: make(map[types.Object]string),
	}
	ast.Inspect(fs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.FuncLit:
			return false
		case *ast.GoStmt:
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				// One goroutine per iteration; count its sends only at
				// the body's own loop-free level — a send inside the
				// worker's job loop fires per job, not per spawn.
				ast.Inspect(lit.Body, func(m ast.Node) bool {
					switch m := m.(type) {
					case *ast.ForStmt, *ast.RangeStmt, *ast.FuncLit:
						return false
					case *ast.SendStmt:
						if obj, name, ok := chanIdent(info, m.Chan); ok {
							p.spawns[obj] = name
						}
					}
					return true
				})
			}
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				if obj, name, ok := chanIdent(info, n.X); ok {
					p.drains[obj] = name
				}
			}
		case *ast.CallExpr:
			if obj, name, ok := wgMethodCall(info, n, "Add"); ok && isIntLitOne(n.Args) {
				p.wgAdds[obj] = name
			}
			if obj, name, ok := wgMethodCall(info, n, "Done"); ok {
				p.wgDones[obj] = name
			}
		}
		return true
	})
	return p
}

// chanIdent resolves a plain identifier of channel type to its object.
func chanIdent(info *types.Info, e ast.Expr) (types.Object, string, bool) {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil, "", false
	}
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	if obj == nil {
		return nil, "", false
	}
	if _, ok := obj.Type().Underlying().(*types.Chan); !ok {
		return nil, "", false
	}
	return obj, id.Name, true
}

// isIntLitOne reports whether args is exactly the literal 1.
func isIntLitOne(args []ast.Expr) bool {
	if len(args) != 1 {
		return false
	}
	lit, ok := ast.Unparen(args[0]).(*ast.BasicLit)
	return ok && lit.Kind == token.INT && lit.Value == "1"
}

// wgUse aggregates everything one function does with one WaitGroup
// object.
type wgUse struct {
	obj     types.Object
	expr    string // rendered receiver for diagnostics
	addPos  []ast.Expr
	adds    []*ast.CallExpr
	escaped bool
	// goroutines referencing the WaitGroup, with whether their body
	// guarantees Done.
	spawns []wgSpawn
	// a non-goroutine guaranteed Done in the declaring function itself:
	// defer wg.Done() or a plain Done call (sequential Add/Done pairing).
	localDone bool
}

type wgSpawn struct {
	stmt       *ast.GoStmt
	lit        *ast.FuncLit // nil when the goroutine runs a named function
	guaranteed bool
	mentions   bool // body references the WaitGroup at all
	// mayDone: the body contains a Done for this WaitGroup on at least
	// one path (or passes it to a call that could Done it) — the defer
	// insertion fix must not stack another Done on top.
	mayDone bool
}

func checkWgBalanceFunc(pass *Pass, fn *ast.FuncDecl) {
	info := pass.Pkg.Info
	uses := make(map[types.Object]*wgUse)
	useOf := func(obj types.Object, expr string) *wgUse {
		u := uses[obj]
		if u == nil {
			u = &wgUse{obj: obj, expr: expr}
			uses[obj] = u
		}
		return u
	}

	// resolveWG maps an expression to a WaitGroup-typed object: a plain
	// identifier or &identifier. Field receivers (s.wg) are treated as
	// escaped state — the pairing may live in another method.
	resolveWG := func(e ast.Expr) (types.Object, bool) {
		switch e := ast.Unparen(e).(type) {
		case *ast.Ident:
			obj := info.Uses[e]
			if obj == nil {
				obj = info.Defs[e]
			}
			if obj != nil && isWaitGroupType(obj.Type()) {
				return obj, true
			}
		case *ast.UnaryExpr:
			if id, ok := ast.Unparen(e.X).(*ast.Ident); ok && e.Op == token.AND {
				obj := info.Uses[id]
				if obj != nil && isWaitGroupType(obj.Type()) {
					return obj, true
				}
			}
		}
		return nil, false
	}

	// Pass 1: collect Adds, local Dones, escapes and goroutine spawns.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			// Classify below; don't descend — the body belongs to the
			// spawn, not to the declaring function's local Dones.
			classifyWgSpawn(pass, fn, n, uses, useOf, resolveWG)
			return false
		case *ast.DeferStmt:
			if obj, expr, ok := wgMethodCall(info, n.Call, "Done"); ok {
				useOf(obj, expr).localDone = true
				return false
			}
		case *ast.CallExpr:
			if obj, expr, ok := wgMethodCall(info, n, "Add"); ok {
				u := useOf(obj, expr)
				u.adds = append(u.adds, n)
				return true
			}
			if obj, expr, ok := wgMethodCall(info, n, "Done"); ok {
				useOf(obj, expr).localDone = true
				return true
			}
			if obj, expr, ok := wgMethodCall(info, n, "Wait"); ok {
				useOf(obj, expr) // a Wait alone creates the use record
				return true
			}
			// A WaitGroup argument: accepted when the callee's summary
			// guarantees Done on that parameter, an escape otherwise.
			cs := pass.Summaries.CalleeSummaryDevirt(info, n)
			for ai, arg := range n.Args {
				obj, ok := resolveWG(arg)
				if !ok {
					continue
				}
				u := useOf(obj, types.ExprString(ast.Unparen(arg)))
				if pi := cs.ParamIndex(ai); pi >= 0 && cs.DonesParams[pi] {
					u.localDone = true
				} else {
					u.escaped = true
				}
			}
		case *ast.AssignStmt:
			// Assigning the WaitGroup (or its address) anywhere is an
			// escape: aliasing defeats the expression matching.
			for _, rhs := range n.Rhs {
				if obj, ok := resolveWG(rhs); ok {
					useOf(obj, "").escaped = true
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if obj, ok := resolveWG(res); ok {
					useOf(obj, "").escaped = true
				}
			}
		}
		return true
	})

	for _, u := range uses {
		if len(u.adds) == 0 || u.escaped {
			continue
		}
		guaranteed := u.localDone
		var unguarded *wgSpawn
		for i := range u.spawns {
			sp := &u.spawns[i]
			if sp.guaranteed {
				guaranteed = true
			} else if sp.mentions && unguarded == nil {
				unguarded = sp
			}
		}
		if guaranteed {
			continue
		}
		if unguarded != nil {
			var fix *SuggestedFix
			if unguarded.lit != nil && !unguarded.mayDone {
				fix = &SuggestedFix{
					Message: "defer wg.Done() at the top of the goroutine",
					Edits: []TextEdit{{
						Pos:     unguarded.lit.Body.Lbrace + 1,
						End:     unguarded.lit.Body.Lbrace + 1,
						NewText: "\ndefer " + u.expr + ".Done()\n",
					}},
				}
			}
			pass.ReportfFix(unguarded.stmt.Pos(), fix,
				"goroutine spawned here may exit without calling %s.Done() on some path; defer %s.Done() so the %s.Add in %s is always matched",
				u.expr, u.expr, u.expr, fn.Name.Name)
			continue
		}
		pass.Reportf(u.adds[0].Pos(),
			"%s.Add in %s is matched by no %s.Done on any path (no defer, no guaranteed call, no Done-guaranteeing callee); Wait will block forever",
			u.expr, fn.Name.Name, u.expr)
	}
}

// classifyWgSpawn records what a go statement does with each WaitGroup
// it references: whether its body guarantees Done (defer, all-paths
// call, or a Done-guaranteeing callee per the summaries).
func classifyWgSpawn(pass *Pass, fn *ast.FuncDecl, g *ast.GoStmt,
	uses map[types.Object]*wgUse, useOf func(types.Object, string) *wgUse,
	resolveWG func(ast.Expr) (types.Object, bool)) {
	info := pass.Pkg.Info

	// go helper(&wg, ...): guaranteed when helper's summary Dones the
	// corresponding parameter.
	if lit, ok := g.Call.Fun.(*ast.FuncLit); !ok {
		cs := pass.Summaries.CalleeSummaryDevirt(info, g.Call)
		for ai, arg := range g.Call.Args {
			obj, ok := resolveWG(arg)
			if !ok {
				continue
			}
			u := useOf(obj, types.ExprString(ast.Unparen(arg)))
			sp := wgSpawn{stmt: g, mentions: true, mayDone: true}
			if pi := cs.ParamIndex(ai); pi >= 0 && cs.DonesParams[pi] {
				sp.guaranteed = true
			} else if cs == nil {
				u.escaped = true // unknown callee took the WaitGroup
			}
			u.spawns = append(u.spawns, sp)
		}
		return
	} else {
		// go func(...){...}(args): find the WaitGroups the body touches
		// (captured or passed) and check the body's guarantee.
		mentioned := make(map[types.Object]string)
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			id, ok := m.(*ast.Ident)
			if !ok {
				return true
			}
			obj := info.Uses[id]
			if obj != nil && isWaitGroupType(obj.Type()) {
				if _, seen := mentioned[obj]; !seen {
					mentioned[obj] = id.Name
				}
			}
			return true
		})
		for obj, name := range mentioned {
			u := useOf(obj, name)
			u.spawns = append(u.spawns, wgSpawn{
				stmt:       g,
				lit:        lit,
				mentions:   true,
				mayDone:    bodyMayCallDone(pass, lit.Body, obj),
				guaranteed: goroutineGuaranteesDone(pass.Pkg.Info, pass.Summaries, lit, obj),
			})
		}
	}
}

// goroutineGuaranteesDone reports whether the goroutine body calls
// Done on obj on every path to its exit, decided by a must-analysis
// over the body's CFG. A call to a static callee whose summary Dones
// the forwarded parameter counts as a Done. A defer counts at its
// registration point — registering `defer wg.Done()` guarantees the
// Done at the exit of every path through the DeferStmt, while paths
// that skip a conditional defer get no credit, so
// `if c { defer wg.Done(); return }; work()` leaves the fall-through
// path unproven.
func goroutineGuaranteesDone(info *types.Info, sums *Summaries, lit *ast.FuncLit, obj types.Object) bool {
	g := BuildCFG(lit.Body)

	isDone := func(node ast.Node) bool {
		found := false
		visitNode(node, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			if o, _, ok := wgMethodCall(info, call, "Done"); ok && o == obj {
				found = true
				return false
			}
			if cs := sums.CalleeSummaryDevirt(info, call); cs != nil {
				for ai, arg := range call.Args {
					if pi := cs.ParamIndex(ai); pi >= 0 && cs.DonesParams[pi] && usesObject(info, arg, obj, nil) {
						found = true
						return false
					}
				}
			}
			return true
		})
		return found
	}

	type fact struct{ done bool }
	res := Solve(g, FlowProblem[fact]{
		Entry: fact{false},
		Transfer: func(b *Block, in fact) fact {
			out := in
			for _, node := range b.Nodes {
				if !out.done && isDone(node) {
					out.done = true
				}
			}
			return out
		},
		Join:  func(a, b fact) fact { return fact{a.done && b.done} },
		Equal: func(a, b fact) bool { return a == b },
	})
	return res.Reached[g.Exit.Index] && res.In[g.Exit.Index].done
}

// bodyMayCallDone reports whether the goroutine body might call Done
// on obj on at least one path: a direct obj.Done() anywhere in the
// body (defers and nested literals included), or obj handed to any
// call — a callee can Done a forwarded WaitGroup even when its summary
// cannot prove it on all paths. Gates the -fix defer insertion: a body
// that may already Done must not get a second Done stacked on top, or
// the paths with both over-release and panic the WaitGroup.
func bodyMayCallDone(pass *Pass, body ast.Node, obj types.Object) bool {
	info := pass.Pkg.Info
	found := false
	ast.Inspect(body, func(m ast.Node) bool {
		if found {
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		if o, _, ok := wgMethodCall(info, call, "Done"); ok && o == obj {
			found = true
			return false
		}
		for _, arg := range call.Args {
			if usesObject(info, arg, obj, nil) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// wgMethodCall matches wg.<method>() on a WaitGroup-typed receiver that
// is a plain identifier, returning the receiver object and its rendered
// expression.
func wgMethodCall(info *types.Info, call *ast.CallExpr, method string) (types.Object, string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return nil, "", false
	}
	obj := info.Uses[sel.Sel]
	if s, ok := info.Selections[sel]; ok {
		obj = s.Obj()
	}
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return nil, "", false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return nil, "", false
	}
	recv := info.Uses[id]
	if recv == nil || !isWaitGroupType(recv.Type()) {
		return nil, "", false
	}
	return recv, id.Name, true
}
