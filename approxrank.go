// Package approxrank is the public API of this repository: a Go
// implementation of the subgraph-ranking framework of Wu & Raschid,
// "ApproxRank: Estimating Rank for a Subgraph" (ICDE 2009), together with
// the substrates its evaluation depends on.
//
// # Overview
//
// Given a global directed web graph with N pages and a subgraph of n local
// pages, the framework estimates PageRank-style scores for the local pages
// that reflect the global link structure without running PageRank on the
// global graph. Both algorithms collapse the N−n external pages into a
// single super-node Λ and run an (n+1)-state random walk:
//
//   - IdealRank assumes the external pages' true PageRank scores are
//     known and reproduces the global scores of the local pages exactly
//     (the paper's Theorem 1).
//   - ApproxRank assumes external pages are equally important; its error
//     against IdealRank is bounded by ε/(1−ε)·‖E−E_approx‖₁ (Theorem 2).
//
// # Quick start
//
//	g := approxrank.MustFromEdges(7, [][2]approxrank.NodeID{{0, 1}, /* … */})
//	sub, _ := approxrank.NewSubgraph(g, []approxrank.NodeID{0, 1, 2, 3})
//	res, _ := approxrank.ApproxRank(sub, approxrank.Config{})
//	// res.Scores[i] estimates the global PageRank of sub.Local[i];
//	// res.Lambda estimates the total score of all external pages.
//
// The subpackages under internal/ hold the implementation: graph engine,
// PageRank engine, the core algorithms, the paper's baselines (local
// PageRank, LPR2, stochastic complementation), ranking metrics, synthetic
// web-graph generation, crawlers, and the experiment harness that
// regenerates the paper's tables and figures (see cmd/experiments).
package approxrank

import (
	"context"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/crawler"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/pagerank"
)

// WebConfig parameterizes the synthetic web-graph generator (domains with
// power-law sizes, heavy-tailed degrees, topical locality).
type WebConfig = gen.Config

// WebDataset is a generated global graph with domain and topic labels.
type WebDataset = gen.Dataset

// GenerateWeb builds a synthetic web graph; the same WebConfig (including
// Seed) always yields the same dataset.
func GenerateWeb(cfg WebConfig) (*WebDataset, error) { return gen.Generate(cfg) }

// NodeID identifies a page; ids are dense in [0, NumNodes).
type NodeID = graph.NodeID

// Graph is an immutable directed graph (see internal/graph).
type Graph = graph.Graph

// Builder accumulates edges and produces a Graph.
type Builder = graph.Builder

// Subgraph designates n local pages within a global graph.
type Subgraph = graph.Subgraph

// NodeSet is a bitset over node ids.
type NodeSet = graph.NodeSet

// GraphStats summarizes a graph's degree structure.
type GraphStats = graph.Stats

// Config carries the random-walk parameters shared by all rankers in this
// package; its zero value selects the paper's settings (ε = 0.85, L1
// tolerance 1e-5, ≤1000 iterations).
type Config = core.Config

// Result is the outcome of an extended-chain ranking: per-local-page
// scores plus the Λ score (see core.Result).
type Result = core.Result

// PageRankResult is the outcome of a plain PageRank computation.
type PageRankResult = pagerank.Result

// PageRankOptions configures GlobalPageRank.
type PageRankOptions = pagerank.Options

// Context caches per-global-graph aggregates so chains for many subgraphs
// of the same global graph are built from local information only.
type Context = core.Context

// ExtendedChain is the Λ-extended (n+1)-state Markov chain.
type ExtendedChain = core.ExtendedChain

// SCConfig configures the stochastic-complementation competitor.
type SCConfig = baseline.SCConfig

// SCResult extends a ranking result with SC's expansion telemetry.
type SCResult = baseline.SCResult

// BaselineConfig carries the PageRank parameters of the baselines.
type BaselineConfig = baseline.Config

// NewBuilder returns a Builder for a graph with numNodes nodes.
func NewBuilder(numNodes int) *Builder { return graph.NewBuilder(numNodes) }

// FromEdges builds an unweighted graph from (src, dst) pairs.
func FromEdges(numNodes int, edges [][2]NodeID) (*Graph, error) {
	return graph.FromEdges(numNodes, edges)
}

// MustFromEdges is FromEdges but panics on error (for literals in examples
// and tests).
func MustFromEdges(numNodes int, edges [][2]NodeID) *Graph {
	return graph.MustFromEdges(numNodes, edges)
}

// LoadGraph reads a graph from disk (text edge list for .txt/.edges,
// binary otherwise).
func LoadGraph(path string) (*Graph, error) { return graph.LoadFile(path) }

// SaveGraph writes a graph to disk in the format implied by the extension.
func SaveGraph(path string, g *Graph) error { return graph.SaveFile(path, g) }

// NewSubgraph designates the given pages as the local subgraph of global.
func NewSubgraph(global *Graph, local []NodeID) (*Subgraph, error) {
	return graph.NewSubgraph(global, local)
}

// NewContext precomputes the global aggregates used by ApproxRankCtx.
func NewContext(g *Graph) *Context { return core.NewContext(g) }

// ApproxRank estimates global PageRank scores for the subgraph assuming
// external pages are equally important (the paper's main algorithm).
func ApproxRank(sub *Subgraph, cfg Config) (*Result, error) {
	return core.ApproxRank(sub, cfg)
}

// ApproxRankCtx is ApproxRank with a shared precomputed Context — the
// multi-subgraph workflow the paper highlights. (The Ctx here is this
// package's Context of global-graph aggregates, not a context.Context;
// for cancellation build a chain and call its RunCtx, or use RankManyCtx
// for batches.)
func ApproxRankCtx(ctx *Context, sub *Subgraph, cfg Config) (*Result, error) {
	return core.ApproxRankCtx(ctx, sub, cfg)
}

// IdealRank computes exact global PageRank scores for the subgraph from
// the known global score vector (Theorem 1).
func IdealRank(sub *Subgraph, globalScores []float64, cfg Config) (*Result, error) {
	return core.IdealRank(sub, globalScores, cfg)
}

// NewApproxChain exposes the ApproxRank extended chain for inspection and
// repeated runs.
func NewApproxChain(sub *Subgraph) (*ExtendedChain, error) {
	return core.NewApproxChain(sub)
}

// NewChainWithExternalScores builds a chain whose Λ row weights external
// pages by an arbitrary non-negative score vector — the generalization
// that subsumes IdealRank (true scores) and ApproxRank (uniform).
func NewChainWithExternalScores(sub *Subgraph, extScores []float64) (*ExtendedChain, error) {
	return core.NewChainWithExternalScores(sub, extScores)
}

// MixExternalScores blends true external scores with the uniform
// assumption (alpha = 0 → ApproxRank's E, alpha = 1 → IdealRank's E).
func MixExternalScores(sub *Subgraph, scores []float64, alpha float64) ([]float64, error) {
	return core.MixExternalScores(sub, scores, alpha)
}

// GlobalPageRank runs the standard PageRank power iteration on g.
func GlobalPageRank(g *Graph, opts PageRankOptions) (*PageRankResult, error) {
	return pagerank.Compute(g, opts)
}

// GlobalPageRankCtx is GlobalPageRank under a context.Context: the power
// iteration checks for cancellation periodically and returns a wrapped
// ctx error instead of a result when it fires.
func GlobalPageRankCtx(ctx context.Context, g *Graph, opts PageRankOptions) (*PageRankResult, error) {
	return pagerank.ComputeCtx(ctx, g, opts)
}

// LocalPageRank is the paper's first baseline: PageRank on the induced
// local graph, ignoring external pages.
func LocalPageRank(sub *Subgraph, cfg BaselineConfig) (*PageRankResult, error) {
	return baseline.LocalPageRank(sub, cfg)
}

// LPR2 is the paper's second baseline: PageRank on the local graph plus a
// naïvely connected artificial external page.
func LPR2(sub *Subgraph, cfg BaselineConfig) (*PageRankResult, error) {
	return baseline.LPR2(sub, cfg)
}

// SC is the stochastic-complementation competitor (Davis & Dhillon,
// KDD 2006).
func SC(sub *Subgraph, cfg SCConfig) (*SCResult, error) {
	return baseline.SC(sub, cfg)
}

// ComputeStats scans a graph and summarizes its degree structure.
func ComputeStats(g *Graph) GraphStats { return graph.ComputeStats(g) }

// BFSCrawl crawls g breadth-first from seed up to maxPages pages — the
// way the paper builds its BFS subgraphs.
func BFSCrawl(g *Graph, seed NodeID, maxPages int) ([]NodeID, error) {
	return crawler.BFS(g, seed, maxPages)
}

// BFSCrawlCtx is BFSCrawl under a context.Context; a cancelled crawl
// returns the pages gathered so far plus a non-nil error wrapping
// ctx.Err().
func BFSCrawlCtx(ctx context.Context, g *Graph, seed NodeID, maxPages int) ([]NodeID, error) {
	return crawler.BFSCtx(ctx, g, seed, maxPages)
}

// CrawlHops returns all pages within the given number of out-link hops of
// the seed set — the paper's topic-subgraph construction.
func CrawlHops(g *Graph, seeds []NodeID, hops int) ([]NodeID, error) {
	return crawler.Hops(g, seeds, hops)
}

// CrawlHopsCtx is CrawlHops under a context.Context; a cancelled crawl
// returns the pages gathered so far plus a non-nil error wrapping
// ctx.Err().
func CrawlHopsCtx(ctx context.Context, g *Graph, seeds []NodeID, hops int) ([]NodeID, error) {
	return crawler.HopsCtx(ctx, g, seeds, hops)
}

// L1 returns the L1 distance between two score vectors (the paper's
// score-accuracy metric).
func L1(a, b []float64) (float64, error) { return metrics.L1(a, b) }

// Footrule returns the Spearman's footrule distance between the partial
// rankings induced by two score vectors, with ties handled by bucket
// positions (the paper's order-accuracy metric).
func Footrule(a, b []float64) (float64, error) { return metrics.FootruleScores(a, b) }

// TopKOverlap returns the fraction of a's top-k pages that are also in
// b's top-k.
func TopKOverlap(a, b []float64, k int) (float64, error) { return metrics.TopKOverlap(a, b, k) }

// Normalize rescales a score vector in place to sum to 1, the convention
// used when comparing restricted global scores against local estimates.
func Normalize(v []float64) {
	s := 0.0
	for _, x := range v {
		s += x
	}
	if s <= 0 {
		return
	}
	for i := range v {
		v[i] /= s
	}
}

// EDistance returns ‖E − E_approx‖₁ for the given external score
// estimates — the quantity Theorem 2's bound scales with.
func EDistance(sub *Subgraph, extScores []float64) (float64, error) {
	return core.EDistance(sub, extScores)
}

// ErrorBound returns Theorem 2's computable accuracy certificate
// ε/(1−ε)·‖E − E_approx‖₁: an upper bound on the L1 gap between
// ApproxRank and the chain that uses extScores as external weights,
// without running either. epsilon 0 selects the default 0.85.
func ErrorBound(sub *Subgraph, extScores []float64, epsilon float64) (float64, error) {
	return core.ErrorBound(sub, extScores, epsilon)
}

// RankMany runs ApproxRank over many subgraphs of one global graph,
// sharing a Context and dispatching chains across workers — the paper's
// multi-subgraph scenario. parallelism ≤ 0 selects one worker per
// subgraph, capped at runtime.GOMAXPROCS(0). The first error cancels the
// whole batch (fail-fast); the positionally-aligned results slice is
// returned even then, with the chains that completed before the
// cancellation intact and every other entry nil.
func RankMany(gctx *Context, subs []*Subgraph, cfg Config, parallelism int) ([]*Result, error) {
	return core.RankMany(gctx, subs, cfg, parallelism)
}

// RankManyCtx is RankMany under a context.Context: cancelling ctx stops
// dispatching new chains and aborts the in-flight power iterations, as
// does the batch's first per-subgraph error.
func RankManyCtx(ctx context.Context, gctx *Context, subs []*Subgraph, cfg Config, parallelism int) ([]*Result, error) {
	return core.RankManyCtx(ctx, gctx, subs, cfg, parallelism)
}
